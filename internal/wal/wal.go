// Package wal implements the append-only write-ahead log behind the
// durable session store (ses/internal/store.Durable): a directory of
// numbered segment files holding length-prefixed, CRC32-checksummed
// records, plus atomically-written checkpoint files that let the log
// be truncated.
//
// The package is deliberately payload-agnostic: it frames, checksums,
// rotates, syncs and replays opaque byte records. What the records
// mean — session mutations, commit stamps, snapshots — is the store
// layer's business.
//
// # On-disk layout
//
// A log is one directory:
//
//	seg-0000000000000001.wal   segment files, strictly increasing seq
//	seg-0000000000000002.wal
//	ckpt-0000000000000002.ckpt newest checkpoint (at most one kept)
//
// Every segment starts with the 7-byte header "SESWAL" + one format
// version byte, followed by records:
//
//	[4B little-endian payload length][4B IEEE CRC32 of payload][payload]
//
// A checkpoint file carries the 8-byte header "SESCKPT" + version
// byte, then one record in the same framing. The file named
// ckpt-N.ckpt captures the state as of the *start* of segment N:
// recovery loads the newest checkpoint and replays exactly the
// segments with seq >= N. Checkpoints are written to a temp file,
// fsynced and renamed, so a crash mid-checkpoint leaves the previous
// generation intact.
//
// # Torn tails and recovery
//
// Replay walks segments in seq order and stops a segment at its first
// invalid record — short header, truncated frame, length out of
// range, or CRC mismatch. Everything before that point is returned;
// everything after is ignored. This makes replay torn-tail-tolerant:
// a crash mid-append loses exactly the record being written (which
// was never acknowledged) and nothing else. Because every Open starts
// appends in a fresh segment, a torn tail can only sit at the end of
// a segment that was the active one when a crash happened; records in
// later segments were written by a process that had already recovered
// past the tear, so skipping it never merges divergent histories.
//
// # Format version policy
//
// The version byte in the segment and checkpoint headers follows the
// same policy as the snapshot codec (ses/internal/snap): any change
// an existing reader would misread — different framing, different
// checksum, reordered fields — bumps the version, and readers reject
// versions they do not know up front with ErrVersion rather than
// guessing. Record payloads carry their own versioning (the store
// layer's record kinds); the wal version covers only the framing.
//
// Version history:
//
//   - 1 (current) — initial format: "SESWAL"/"SESCKPT" headers,
//     little-endian uint32 length + IEEE CRC32 framing.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Version is the current segment/checkpoint framing version.
const Version = 1

const (
	segMagic   = "SESWAL"
	ckptMagic  = "SESCKPT"
	segSuffix  = ".wal"
	ckptSuffix = ".ckpt"
	frameHead  = 8 // 4B length + 4B CRC
	// MaxRecordBytes bounds a single record payload; a length field
	// beyond it is treated as corruption, which keeps replay from
	// trusting a garbage length and allocating gigabytes.
	MaxRecordBytes = 1 << 28
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives an OS crash or power loss. Slowest; the safe default.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a periodic flusher (the store runs
	// one; see Log.Sync): a process crash loses nothing, an OS crash
	// loses at most the last interval of acknowledged records.
	SyncInterval
	// SyncNone never fsyncs explicitly (segment rotation, checkpoints
	// and Close still do): a process crash loses nothing, an OS crash
	// can lose anything since the last rotation. Fastest.
	SyncNone
)

// String returns the spec form used by flags ("always", "interval",
// "none").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves the flag spelling of a sync policy; ""
// means SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

// GroupCommit configures fsync amortization across concurrent
// appenders (see Log.Append). It only changes behavior under
// SyncAlways — the other policies do not fsync per append, so there
// is nothing to amortize.
type GroupCommit struct {
	// Enabled turns the commit queue on.
	Enabled bool
	// MaxBatch caps how many records one fsync may cover (0 = 128).
	MaxBatch int
	// MaxDelay is how long a commit leader waits for the batch to fill
	// once at least one other appender is already queued (0 = commit
	// immediately). A lone appender never waits: its latency stays that
	// of a single append + fsync.
	MaxDelay time.Duration
}

func (g GroupCommit) maxBatch() int {
	if g.MaxBatch <= 0 {
		return 128
	}
	return g.MaxBatch
}

// Options configures a Log; the zero value is usable (SyncAlways,
// 64 MiB segments).
type Options struct {
	// Sync is the append durability policy.
	Sync SyncPolicy
	// SegmentMaxBytes rotates the active segment once it exceeds this
	// size (0 = 64 MiB). Rotation always fsyncs the outgoing segment.
	SegmentMaxBytes int64
	// GroupCommit batches concurrent SyncAlways appenders into shared
	// fsyncs.
	GroupCommit GroupCommit

	// syncFile overrides segment fsync in tests (fault injection and
	// flush counting); nil means (*os.File).Sync.
	syncFile func(*os.File) error
}

func (o Options) segmentMax() int64 {
	if o.SegmentMaxBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentMaxBytes
}

// Errors.
var (
	// ErrVersion reports a segment or checkpoint header version this
	// build does not read.
	ErrVersion = errors.New("wal: unsupported format version")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrReplayed reports a second Replay call; replay consumes the
	// recovered tail exactly once, before appending starts.
	ErrReplayed = errors.New("wal: log already replayed")
)

// Record is one replayed log record with its provenance, so callers
// (and the seswal inspector) can map records back to byte positions.
type Record struct {
	// Seq is the segment the record was read from.
	Seq uint64
	// Offset and End are the record's frame boundaries within the
	// segment file (Offset points at the length field).
	Offset, End int64
	// Payload is the record body. It is owned by the callback for the
	// duration of the call only.
	Payload []byte
}

// Truncation reports one spot where replay stopped short inside a
// segment (torn tail or corruption).
type Truncation struct {
	Seq    uint64
	Offset int64  // byte offset replay stopped at
	Reason string // human-readable cause
}

// ReplayReport summarizes one recovery pass.
type ReplayReport struct {
	// CheckpointSeq is the segment the loaded checkpoint points at (0
	// when the log had no checkpoint).
	CheckpointSeq uint64
	// Segments and Records count what was scanned and delivered.
	Segments int
	Records  int
	// Truncations lists the spots where a segment ended early.
	Truncations []Truncation
}

// Log is one append-only write-ahead log directory. All methods are
// safe for concurrent use, but replay must finish before the first
// Append; the store layer serializes that naturally (recovery runs
// before serving).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment (nil until first append)
	seq      uint64   // active segment seq (0 until first append)
	nextSeq  uint64   // seq the next created segment gets
	size     int64
	dirty    bool // unsynced appended bytes
	closed   bool
	replayed bool

	// stats (guarded by mu).
	stats Stats

	// group-commit queue (guarded by gcMu, separate from mu so
	// enqueueing never blocks behind an in-flight fsync).
	gcMu     sync.Mutex
	gcQueue  []*gcWaiter
	gcActive bool // a leader is draining the queue

	// recovered state from Open.
	ckptData []byte
	ckptSeq  uint64
	segs     []segFile // segments with seq >= ckptSeq, ascending
	stale    []segFile // segments a crashed checkpoint left behind
}

// segFile is one discovered segment.
type segFile struct {
	seq  uint64
	path string
}

// Open scans dir (which need not exist yet) and prepares the log for
// replay and appending. Nothing is created or modified until the
// first Append or WriteCheckpoint, so opening a log read-only — as
// the seswal inspector does — leaves the directory untouched.
func Open(dir string, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return l, nil
		}
		return nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	var ckpts []segFile
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, segSuffix):
			seq, err := parseSeq(name, "seg-", segSuffix)
			if err != nil {
				continue // foreign file; ignore
			}
			l.segs = append(l.segs, segFile{seq: seq, path: filepath.Join(dir, name)})
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ckptSuffix):
			seq, err := parseSeq(name, "ckpt-", ckptSuffix)
			if err != nil {
				continue
			}
			ckpts = append(ckpts, segFile{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].seq < l.segs[j].seq })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].seq < ckpts[j].seq })

	// Load the newest checkpoint. A checkpoint that fails to parse is
	// fatal: the segments covering its state were truncated when it
	// was written, so silently skipping it would resurrect an ancient
	// (or empty) state as if it were current.
	if len(ckpts) > 0 {
		newest := ckpts[len(ckpts)-1]
		data, err := readCheckpointFile(newest.path)
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint %s: %w", newest.path, err)
		}
		l.ckptData = data
		l.ckptSeq = newest.seq
	}

	// Replay covers segments at or after the checkpoint boundary. A
	// crash between installing a checkpoint and deleting the segments
	// it covers leaves stale ones behind; they are ignored here and
	// swept by the next WriteCheckpoint.
	kept := make([]segFile, 0, len(l.segs))
	for _, s := range l.segs {
		if s.seq >= l.ckptSeq {
			kept = append(kept, s)
		} else {
			l.stale = append(l.stale, s)
		}
	}
	l.segs = kept
	if n := len(l.segs); n > 0 {
		l.nextSeq = l.segs[n-1].seq + 1
	} else if l.ckptSeq > 0 {
		l.nextSeq = l.ckptSeq
	}
	return l, nil
}

// parseSeq extracts the sequence number from a segment/ckpt filename.
func parseSeq(name, prefix, suffix string) (uint64, error) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil || seq == 0 {
		return 0, fmt.Errorf("wal: bad sequence in %q", name)
	}
	return seq, nil
}

// Checkpoint returns the payload of the newest checkpoint recovered
// by Open (nil when the log had none). The slice is owned by the log;
// callers must not modify it.
func (l *Log) Checkpoint() []byte { return l.ckptData }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Replay streams every recovered record, in (segment, offset) order,
// to fn. Replay stops a segment at its first invalid record (see the
// package torn-tail contract) and reports where in the returned
// ReplayReport. A non-nil error from fn aborts the walk and is
// returned. Replay may be called at most once, before any Append.
func (l *Log) Replay(fn func(Record) error) (ReplayReport, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ReplayReport{}, ErrClosed
	}
	if l.replayed {
		l.mu.Unlock()
		return ReplayReport{}, ErrReplayed
	}
	l.replayed = true
	segs := l.segs
	rep := ReplayReport{CheckpointSeq: l.ckptSeq}
	l.mu.Unlock()

	buf := make([]byte, 0, 4096)
	for _, s := range segs {
		rep.Segments++
		trunc, err := replaySegment(s, &rep, &buf, fn)
		if err != nil {
			return rep, err
		}
		if trunc != nil {
			rep.Truncations = append(rep.Truncations, *trunc)
		}
	}
	return rep, nil
}

// replaySegment walks one segment file. It returns a non-nil
// Truncation when the segment ended early, and a non-nil error only
// for I/O failures or a callback error.
func replaySegment(s segFile, rep *ReplayReport, buf *[]byte, fn func(Record) error) (*Truncation, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment %s: %w", s.path, err)
	}
	defer f.Close()
	// Buffer the walk: replay reads two small frames per record, and
	// recovery is the path a rebooting daemon blocks on.
	r := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}

	head := make([]byte, len(segMagic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return &Truncation{Seq: s.seq, Offset: 0, Reason: "short segment header"}, nil
	}
	if string(head[:len(segMagic)]) != segMagic {
		return &Truncation{Seq: s.seq, Offset: 0, Reason: "bad segment magic"}, nil
	}
	if v := int(head[len(segMagic)]); v != Version {
		return nil, fmt.Errorf("%w: segment %s has version %d (this build reads %d)", ErrVersion, s.path, v, Version)
	}

	for {
		off := r.n
		payload, reason, err := readFrame(r, buf)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", s.path, err)
		}
		if reason == "eof" {
			return nil, nil
		}
		if reason != "" {
			return &Truncation{Seq: s.seq, Offset: off, Reason: reason}, nil
		}
		rep.Records++
		if err := fn(Record{Seq: s.seq, Offset: off, End: r.n, Payload: payload}); err != nil {
			return nil, err
		}
	}
}

// readFrame reads one [len][crc][payload] frame. It returns reason ==
// "eof" at a clean end, a non-empty reason for a torn/corrupt frame,
// and a non-nil error only for real I/O failures.
func readFrame(r io.Reader, buf *[]byte) (payload []byte, reason string, err error) {
	var head [frameHead]byte
	n, err := io.ReadFull(r, head[:])
	if err == io.EOF && n == 0 {
		return nil, "eof", nil
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return nil, "torn frame header", nil
	}
	if err != nil {
		return nil, "", err
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	if length > MaxRecordBytes {
		return nil, fmt.Sprintf("record length %d exceeds limit", length), nil
	}
	if cap(*buf) < int(length) {
		*buf = make([]byte, length)
	}
	b := (*buf)[:length]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, "torn record payload", nil
		}
		return nil, "", err
	}
	if crc32.ChecksumIEEE(b) != sum {
		return nil, "payload CRC mismatch", nil
	}
	return b, "", nil
}

// countingReader tracks the byte offset of a sequential reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append frames payload, writes it to the active segment and — under
// SyncAlways — fsyncs before returning. The payload is copied into
// the kernel before Append returns, so the caller may reuse it.
//
// With Options.GroupCommit enabled (and SyncAlways), concurrent
// appenders share fsyncs: each Append enqueues its frame on a commit
// queue, one appender at a time becomes the leader, drains the queue,
// writes the whole batch and issues a single fsync before waking
// every waiter. Acknowledgment order equals write order (the queue is
// FIFO), every record is still durable before its Append returns, and
// a batch that fails to write or sync reports the error to every
// waiter whose frame it covered — exactly the single-append contract,
// amortized.
func (l *Log) Append(payload []byte) error {
	_, err := l.AppendCursor(payload)
	return err
}

// AppendCursor is Append returning the cursor just past the appended
// record: a Tailer that reaches this cursor has shipped the record,
// and a replica acknowledging a cursor not Before it has applied it.
// That makes the return value the per-record replication watermark —
// synchronous-ack callers wait until enough followers ack a cursor at
// or beyond it. On the group-commit path the cursor is assigned by the
// batch leader in write order, so it rides the existing leader/waiter
// structure with no extra locking. The durability contract is
// identical to Append on both paths.
func (l *Log) AppendCursor(payload []byte) (Cursor, error) {
	if len(payload) > MaxRecordBytes {
		return Cursor{}, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecordBytes)
	}
	if l.opts.GroupCommit.Enabled && l.opts.Sync == SyncAlways {
		return l.appendGrouped(payload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writeFrameLocked(payload); err != nil {
		return Cursor{}, err
	}
	pos := Cursor{Seq: l.seq, Off: l.size}
	if l.opts.Sync == SyncAlways {
		if err := l.fsyncSegmentLocked(); err != nil {
			return Cursor{}, err
		}
		return pos, nil
	}
	l.dirty = true
	return pos, nil
}

// writeFrameLocked rotates if needed and writes one framed record to
// the active segment. Called with l.mu held; it does not sync.
func (l *Log) writeFrameLocked(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil || l.size >= l.opts.segmentMax() {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var head [frameHead]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(head[:]); err != nil {
		return fmt.Errorf("wal: appending to %s: %w", l.f.Name(), err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: appending to %s: %w", l.f.Name(), err)
	}
	l.size += int64(frameHead + len(payload))
	l.stats.Appends++
	return nil
}

// fsyncSegmentLocked syncs the active segment (through the test hook
// when set) and counts the fsync. Called with l.mu held.
func (l *Log) fsyncSegmentLocked() error {
	if err := l.fsyncFile(l.f); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", l.f.Name(), err)
	}
	l.stats.Fsyncs++
	l.dirty = false
	return nil
}

// fsyncFile routes an fsync through the test hook when one is set.
func (l *Log) fsyncFile(f *os.File) error {
	if l.opts.syncFile != nil {
		return l.opts.syncFile(f)
	}
	return f.Sync()
}

// rotateLocked fsyncs and closes the active segment (if any) and
// opens the next one. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.fsyncSegmentLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing %s: %w", l.f.Name(), err)
		}
		l.f = nil
		l.dirty = false
	}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	seq := l.nextSeq
	path := l.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(append([]byte(segMagic), Version)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.seq = seq
	l.nextSeq = seq + 1
	l.size = int64(len(segMagic) + 1)
	l.segs = append(l.segs, segFile{seq: seq, path: path})
	return syncDir(l.dir)
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%016x%s", seq, segSuffix))
}

func (l *Log) ckptPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("ckpt-%016x%s", seq, ckptSuffix))
}

// Sync flushes unsynced appends to stable storage. It is the
// periodic-flusher entry point for SyncInterval logs and a no-op when
// nothing is dirty.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	return l.fsyncSegmentLocked()
}

// NeedsSync reports whether the log has appended bytes not yet
// fsynced.
func (l *Log) NeedsSync() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirty
}

// HasData reports whether the log holds anything at all — a recovered
// checkpoint, recovered segments, or appends from this process.
func (l *Log) HasData() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptData != nil || len(l.segs) > 0
}

// WriteCheckpoint atomically installs data as the log's checkpoint
// and truncates the segments it covers. The caller must guarantee
// that data captures all state whose records precede the call and
// none of any concurrent append — in the durable store both are
// enforced by the per-shard op lock held around snapshot + checkpoint.
//
// Sequence: the active segment is fsynced and retired, the checkpoint
// is written to a temp file, fsynced and renamed over ckpt-N (N = the
// seq the *next* segment will get), and only then are segments < N
// and older checkpoints deleted. A crash at any point leaves either
// the old generation or the new one fully intact.
func (l *Log) WriteCheckpoint(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Retire the active segment so the checkpoint boundary is a
	// segment boundary.
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing %s: %w", l.f.Name(), err)
		}
		l.f = nil
	}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	seq := l.nextSeq // state as of the start of the segment to come

	tmp, err := os.CreateTemp(l.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var head [frameHead]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(data))
	if _, err := tmp.Write(append([]byte(ckptMagic), Version)); err != nil {
		return fail(fmt.Errorf("wal: writing checkpoint: %w", err))
	}
	if _, err := tmp.Write(head[:]); err != nil {
		return fail(fmt.Errorf("wal: writing checkpoint: %w", err))
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(fmt.Errorf("wal: writing checkpoint: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("wal: syncing checkpoint: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("wal: closing checkpoint temp: %w", err))
	}
	if err := os.Rename(tmpName, l.ckptPath(seq)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The new checkpoint is durable; everything it covers can go.
	l.ckptData = append([]byte(nil), data...)
	l.ckptSeq = seq
	for _, s := range l.segs {
		if s.seq < seq {
			os.Remove(s.path)
		}
	}
	l.segs = l.segs[:0]
	for _, s := range l.stale {
		os.Remove(s.path)
	}
	l.stale = nil
	// Sweep every other checkpoint file — the tracked previous one,
	// strays a crash left between install and delete on an earlier
	// generation, and temp files from crashed writes — so exactly one
	// checkpoint remains.
	newCkpt := filepath.Base(l.ckptPath(seq))
	if ents, err := os.ReadDir(l.dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if !strings.HasPrefix(name, "ckpt-") || name == newCkpt {
				continue
			}
			if strings.HasSuffix(name, ckptSuffix) || strings.HasSuffix(name, ".tmp") {
				os.Remove(filepath.Join(l.dir, name))
			}
		}
	}
	return syncDir(l.dir)
}

// readCheckpointFile parses one checkpoint file.
func readCheckpointFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(ckptMagic)+1)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, errors.New("short checkpoint header")
	}
	if string(head[:len(ckptMagic)]) != ckptMagic {
		return nil, errors.New("bad checkpoint magic")
	}
	if v := int(head[len(ckptMagic)]); v != Version {
		return nil, fmt.Errorf("%w: checkpoint version %d (this build reads %d)", ErrVersion, v, Version)
	}
	var buf []byte
	payload, reason, err := readFrame(f, &buf)
	if err != nil {
		return nil, err
	}
	if reason != "" {
		return nil, fmt.Errorf("checkpoint frame: %s", reason)
	}
	out := append([]byte(nil), payload...)
	return out, nil
}

// Close fsyncs and closes the active segment. The log must not be
// used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	// Close always flushes: under SyncInterval/SyncNone this is what
	// makes a clean shutdown lose nothing even when the flusher never
	// got to the last appends.
	err := l.fsyncSegmentLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Filesystems that refuse to fsync directories are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // best effort; some filesystems reject it
	return nil
}

// SegmentInfo describes one on-disk segment for inspection.
type SegmentInfo struct {
	Seq   uint64
	Path  string
	Bytes int64
}

// Segments lists the log's current segment files (recovered plus
// appended), ascending by seq; sizes are read fresh from the
// filesystem.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.segs))
	for _, s := range l.segs {
		info := SegmentInfo{Seq: s.seq, Path: s.path}
		if st, err := os.Stat(s.path); err == nil {
			info.Bytes = st.Size()
		}
		out = append(out, info)
	}
	return out
}

// CheckpointSeq returns the seq boundary of the loaded/installed
// checkpoint (0 when there is none).
func (l *Log) CheckpointSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptSeq
}

// interval flusher support ---------------------------------------------------

// Flusher periodically Syncs a set of logs; the durable store runs
// one when its policy is SyncInterval.
type Flusher struct {
	interval time.Duration
	logs     []*Log
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewFlusher starts a background flusher over logs (nil entries are
// skipped) with the given interval (0 = 50ms).
func NewFlusher(interval time.Duration, logs []*Log) *Flusher {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	f := &Flusher{interval: interval, logs: logs, done: make(chan struct{})}
	f.wg.Add(1)
	go f.loop()
	return f
}

func (f *Flusher) loop() {
	defer f.wg.Done()
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-t.C:
			for _, l := range f.logs {
				if l != nil && l.NeedsSync() {
					l.Sync() // best effort; append-path errors surface there
				}
			}
		}
	}
}

// Stop halts the flusher after a final sync pass.
func (f *Flusher) Stop() {
	close(f.done)
	f.wg.Wait()
	for _, l := range f.logs {
		if l != nil && l.NeedsSync() {
			l.Sync()
		}
	}
}
