package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// replayPayloads collects every recovered payload of a fresh Open
// (the replayAll helper in wal_test.go, minus the checkpoint).
func replayPayloads(t *testing.T, dir string) [][]byte {
	t.Helper()
	_, payloads, _ := replayAll(t, dir)
	return payloads
}

// TestGroupCommitConcurrentAppenders drives N appenders through the
// commit queue under -race and checks the full single-append
// contract survives amortization: every record recovered, each
// appender's program order preserved on disk, and strictly fewer
// fsyncs than records (the amortization actually happened).
func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, GroupCommit: GroupCommit{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perAppender = 8, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if err := l.Append(fmt.Appendf(nil, "a%02d-%04d", a, i)); err != nil {
					t.Errorf("appender %d record %d: %v", a, i, err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if st.Appends != appenders*perAppender {
		t.Fatalf("stats report %d appends, want %d", st.Appends, appenders*perAppender)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("no amortization: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if st.Batches == 0 || st.BatchedRecords != st.Appends {
		t.Fatalf("batch accounting off: %d batches covering %d of %d records",
			st.Batches, st.BatchedRecords, st.Appends)
	}

	recovered := replayPayloads(t, dir)
	if len(recovered) != appenders*perAppender {
		t.Fatalf("recovered %d records, want %d", len(recovered), appenders*perAppender)
	}
	// Per-appender program order must be the on-disk order.
	next := make([]int, appenders)
	for _, p := range recovered {
		var a, i int
		if _, err := fmt.Sscanf(string(p), "a%02d-%04d", &a, &i); err != nil {
			t.Fatalf("unparseable record %q", p)
		}
		if i != next[a] {
			t.Fatalf("appender %d: record %d recovered before %d", a, i, next[a])
		}
		next[a]++
	}
}

// TestGroupCommitFaultInjectedSync fails the shared fsync under N
// concurrent appenders and checks every waiter of the doomed batches
// observes the error — no record a failed fsync covered may be
// acknowledged — and that the log afterwards behaves exactly as it
// does after a failed single append: not latched, the next append
// with a healthy disk succeeds.
func TestGroupCommitFaultInjectedSync(t *testing.T) {
	dir := t.TempDir()
	syncErr := errors.New("injected fsync failure")
	var failing atomic.Bool
	failing.Store(true)
	opts := Options{
		Sync:        SyncAlways,
		GroupCommit: GroupCommit{Enabled: true},
		syncFile: func(f *os.File) error {
			if failing.Load() {
				return syncErr
			}
			return f.Sync()
		},
	}
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const appenders = 8
	errs := make([]error, appenders)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			errs[a] = l.Append(fmt.Appendf(nil, "doomed-%d", a))
		}(a)
	}
	wg.Wait()
	for a, err := range errs {
		if !errors.Is(err, syncErr) {
			t.Fatalf("appender %d: got %v, want the injected sync error", a, err)
		}
	}

	// Heal the disk: the log is usable again, like after a failed
	// single append (poisoning is the durable store's job, not the
	// log's).
	failing.Store(false)
	if err := l.Append([]byte("healed")); err != nil {
		t.Fatalf("append after healed sync: %v", err)
	}
}

// TestGroupCommitLoneAppenderDoesNotWait pins the acceptance bound:
// with a large MaxDelay configured, a lone appender must still commit
// at single-append latency — the delay only ever applies when a
// leader already has company.
func TestGroupCommitLoneAppenderDoesNotWait(t *testing.T) {
	dir := t.TempDir()
	const delay = 300 * time.Millisecond
	l, err := Open(dir, Options{
		Sync:        SyncAlways,
		GroupCommit: GroupCommit{Enabled: true, MaxDelay: delay},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	const n = 5
	for i := 0; i < n; i++ {
		if err := l.Append([]byte("lone")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed >= delay {
		t.Fatalf("%d lone appends took %v — the leader waited MaxDelay (%v) with no company", n, elapsed, delay)
	}
	if st := l.Stats(); st.Fsyncs != n {
		t.Fatalf("lone appends issued %d fsyncs, want %d (one each)", st.Fsyncs, n)
	}
}

// TestGroupCommitMaxDelayFillsBatch checks the other side of the
// MaxDelay contract: a leader with company keeps collecting until the
// batch fills (or the delay expires), so the straggler that arrives
// during the wait shares the fsync.
func TestGroupCommitMaxDelayFillsBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{
		Sync:        SyncAlways,
		GroupCommit: GroupCommit{Enabled: true, MaxBatch: 4, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const appenders = 12
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			if err := l.Append(fmt.Appendf(nil, "r%d", a)); err != nil {
				t.Errorf("append %d: %v", a, err)
			}
		}(a)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != appenders {
		t.Fatalf("%d appends recorded, want %d", st.Appends, appenders)
	}
	for _, b := range []uint64{st.Batches, st.BatchedRecords} {
		if b == 0 {
			t.Fatalf("no batches recorded: %+v", st)
		}
	}
	if got := replayPayloads(t, dir); len(got) != appenders {
		t.Fatalf("recovered %d records, want %d", len(got), appenders)
	}
}

// TestGroupCommitRotatesMidBatch makes one batch span a segment
// rotation and checks nothing tears: tiny segments force rotation
// inside commitBatch's write loop.
func TestGroupCommitRotatesMidBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{
		Sync:            SyncAlways,
		SegmentMaxBytes: 64, // a couple of records per segment
		GroupCommit:     GroupCommit{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perAppender = 4, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if err := l.Append(fmt.Appendf(nil, "rot-%d-%d", a, i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if n := len(l.Segments()); n < 2 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayPayloads(t, dir); len(got) != appenders*perAppender {
		t.Fatalf("recovered %d records, want %d", len(got), appenders*perAppender)
	}
}

// TestGroupCommitDisabledOffAlwaysPolicy checks the queue only
// engages under SyncAlways: with SyncInterval the grouped options
// must still leave appends on the direct path (dirty bytes, no
// per-append fsync).
func TestGroupCommitDisabledOffAlwaysPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, GroupCommit: GroupCommit{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("deferred")); err != nil {
		t.Fatal(err)
	}
	if !l.NeedsSync() {
		t.Fatal("SyncInterval append should leave the log dirty")
	}
	if st := l.Stats(); st.Batches != 0 {
		t.Fatalf("group path engaged under SyncInterval: %+v", st)
	}
}

// TestCloseDuringFlusherRace closes logs while a background Flusher
// is mid-flight over them (satellite: the flusher must tolerate a log
// closing under it — Sync on a closed log reports ErrClosed and the
// flusher treats it as best-effort). Run with -race.
func TestCloseDuringFlusherRace(t *testing.T) {
	logs := make([]*Log, 4)
	for i := range logs {
		l, err := Open(t.TempDir(), Options{Sync: SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	f := NewFlusher(time.Millisecond, logs)
	var wg sync.WaitGroup
	for _, l := range logs {
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Append([]byte("spin")); err != nil {
					return // closed under us: expected
				}
			}
		}(l)
	}
	// Close the logs while the flusher ticks and the appenders spin.
	var cg sync.WaitGroup
	for _, l := range logs {
		cg.Add(1)
		go func(l *Log) {
			defer cg.Done()
			time.Sleep(time.Duration(1+len(l.dir)%3) * time.Millisecond)
			l.Close()
		}(l)
	}
	cg.Wait()
	wg.Wait()
	f.Stop() // final pass over closed logs must not panic
	for _, l := range logs {
		if err := l.Sync(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Sync after close: got %v, want ErrClosed", err)
		}
	}
}

// TestSyncIntervalClosesFlushed pins what the crash matrix only
// implies: a SyncInterval log with pending unsynced bytes issues a
// real segment fsync on Close, so a clean shutdown loses nothing even
// if the flusher never ran.
func TestSyncIntervalClosesFlushed(t *testing.T) {
	dir := t.TempDir()
	var fsyncs atomic.Int64
	l, err := Open(dir, Options{
		Sync: SyncInterval,
		syncFile: func(f *os.File) error {
			fsyncs.Add(1)
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("pending")); err != nil {
			t.Fatal(err)
		}
	}
	if !l.NeedsSync() {
		t.Fatal("appends under SyncInterval should be pending a flush")
	}
	// Rotation of the fresh segment synced nothing yet beyond itself;
	// record the count, close, and require at least one more fsync —
	// the close-time flush of the pending bytes.
	before := fsyncs.Load()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fsyncs.Load() <= before {
		t.Fatalf("Close issued no fsync over %d pending appends", 3)
	}
	if got := replayPayloads(t, dir); len(got) != 3 {
		t.Fatalf("recovered %d records after close, want 3", len(got))
	}
}

// TestAppendCursorMatchesPosition checks AppendCursor on both append
// paths: every returned cursor is distinct, strictly increasing in
// Before order when appends are serial, and the final cursor equals
// Position(). On the group-commit path the leader assigns cursors, so
// the concurrent half checks the set is duplicate-free and its max is
// the final position.
func TestAppendCursorMatchesPosition(t *testing.T) {
	t.Run("direct", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		var prev Cursor
		for i := 0; i < 20; i++ {
			cur, err := l.AppendCursor(fmt.Appendf(nil, "rec-%03d", i))
			if err != nil {
				t.Fatal(err)
			}
			if cur.IsZero() || !prev.Before(cur) {
				t.Fatalf("append %d: cursor %v not after %v", i, cur, prev)
			}
			prev = cur
		}
		if pos := l.Position(); pos != prev {
			t.Fatalf("Position() = %v, last AppendCursor = %v", pos, prev)
		}
	})
	t.Run("grouped", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Sync: SyncAlways, GroupCommit: GroupCommit{Enabled: true}})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		const appenders, perAppender = 8, 25
		cursors := make([][]Cursor, appenders)
		var wg sync.WaitGroup
		for a := 0; a < appenders; a++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				for i := 0; i < perAppender; i++ {
					cur, err := l.AppendCursor(fmt.Appendf(nil, "a%02d-%04d", a, i))
					if err != nil {
						t.Errorf("appender %d: %v", a, err)
						return
					}
					cursors[a] = append(cursors[a], cur)
				}
			}(a)
		}
		wg.Wait()
		seen := map[Cursor]bool{}
		var max Cursor
		for a := range cursors {
			var prev Cursor
			for _, cur := range cursors[a] {
				if cur.IsZero() || seen[cur] {
					t.Fatalf("cursor %v zero or duplicated", cur)
				}
				seen[cur] = true
				if !prev.Before(cur) {
					t.Fatalf("appender %d cursors out of order: %v then %v", a, prev, cur)
				}
				prev = cur
				if max.Before(cur) {
					max = cur
				}
			}
		}
		if len(seen) != appenders*perAppender {
			t.Fatalf("got %d distinct cursors, want %d", len(seen), appenders*perAppender)
		}
		if pos := l.Position(); pos != max {
			t.Fatalf("Position() = %v, max AppendCursor = %v", pos, max)
		}
	})
}
