package sestest

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ses/internal/choice"
	"ses/internal/core"
	"ses/internal/randx"
	"ses/internal/solver"
)

// TestObjectiveValueInvariantUnderRelabeling extends the metamorphic
// relabeling property to the whole objective registry: every
// objective's value is a function of which events run when, never of
// how events are numbered. Relabeling the instance and mapping the
// schedule through the same permutation must preserve the value of
// omega, attendance and fairness alike.
func TestObjectiveValueInvariantUnderRelabeling(t *testing.T) {
	objectives := choice.Objectives()
	property := func(instSeed, permSeed uint16) bool {
		cfg := Config{
			Users: 20, Events: 10, Intervals: 4, Competing: 2,
			Seed: uint64(instSeed),
		}
		inst := Random(cfg)
		res := grdSolve(t, inst, 4)
		perm := randx.Derive(uint64(permSeed), "relabel").Perm(inst.NumEvents())
		permuted := PermuteEvents(inst, perm)
		mapped := core.NewSchedule(permuted)
		for _, a := range res.Schedule.Assignments() {
			if err := mapped.Assign(perm[a.Event], a.Interval); err != nil {
				t.Logf("mapped schedule infeasible after relabeling: %v", err)
				return false
			}
		}
		for _, obj := range objectives {
			orig := choice.ReferenceValue(inst, res.Schedule, obj)
			relabeled := choice.ReferenceValue(permuted, mapped, obj)
			if math.Abs(orig-relabeled) > utilityTolerance {
				t.Logf("%s changed under relabeling: %v -> %v (perm %v)",
					obj.Name(), orig, relabeled, perm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// fairnessTerm is the min-participant component of the fairness
// objective: because the blend is linear in λ, it is exactly the
// schedule's value under blend 1 (Σ_t n_t · min share).
func fairnessTerm(inst *core.Instance, s *core.Schedule) float64 {
	pure, err := choice.NewFairness(1)
	if err != nil {
		panic(err)
	}
	return choice.ReferenceValue(inst, s, pure)
}

// TestFairnessMinUtilityMonotoneInBlend is the scalarization property
// of the egalitarian blend: let S(λ) be an exact optimizer of
// F_λ = (1-λ)·A + λ·M (attendance term A, min-participant term M).
// For λ1 < λ2, adding the two optimality inequalities gives
// (λ2-λ1)·(M(S2) - M(S1)) ≥ 0, so the fairness term of the chosen
// schedule is non-decreasing in the blend weight — regardless of
// tie-breaking. testing/quick drives instance seeds and blend pairs
// through the exact solver on tiny instances (the fairness objective
// disables the branch-and-bound prune, so the search is a full
// enumeration).
func TestFairnessMinUtilityMonotoneInBlend(t *testing.T) {
	solveFair := func(inst *core.Instance, blend float64) *core.Schedule {
		obj, err := choice.NewFairness(blend)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.NewExact(solver.Config{Workers: 1, Objective: obj}).
			Solve(context.Background(), inst, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule
	}
	property := func(instSeed uint16, b1, b2 uint8) bool {
		l1 := float64(b1) / 255
		l2 := float64(b2) / 255
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		if l2-l1 < 1e-9 {
			return true // equal blends carry no ordering claim
		}
		inst := Random(Config{
			Users: 10, Events: 5, Intervals: 2, Competing: 2,
			Seed: uint64(instSeed),
		})
		m1 := fairnessTerm(inst, solveFair(inst, l1))
		m2 := fairnessTerm(inst, solveFair(inst, l2))
		if m2 < m1-utilityTolerance {
			t.Logf("seed %d: fairness term dropped as blend rose %v -> %v: %v -> %v",
				instSeed, l1, l2, m1, m2)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
