package sestest

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ses/internal/choice"
	"ses/internal/core"
	"ses/internal/randx"
	"ses/internal/solver"
)

// utilityTolerance absorbs the float addition-order differences a
// relabeling legitimately introduces (Ω sums per-event terms in index
// order).
const utilityTolerance = 1e-9

// grdSolve runs the production greedy on inst.
func grdSolve(t testing.TB, inst *core.Instance, k int) *solver.Result {
	t.Helper()
	res, err := solver.NewGRD(solver.Config{Workers: 1}).Solve(context.Background(), inst, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestUtilityInvariantUnderRelabeling is the metamorphic property: Ω
// is a function of *which* events run *when*, never of how they are
// numbered. Relabeling the events of an instance and mapping a
// schedule through the same permutation must preserve its utility
// exactly (up to summation order). testing/quick drives the seeds.
func TestUtilityInvariantUnderRelabeling(t *testing.T) {
	property := func(instSeed, permSeed uint16) bool {
		cfg := Config{
			Users: 20, Events: 10, Intervals: 4, Competing: 2,
			Seed: uint64(instSeed),
		}
		inst := Random(cfg)
		res := grdSolve(t, inst, 4)

		perm := randx.Derive(uint64(permSeed), "relabel").Perm(inst.NumEvents())
		permuted := PermuteEvents(inst, perm)
		if err := permuted.Validate(); err != nil {
			t.Fatalf("permuted instance invalid: %v", err)
			return false
		}
		mapped := core.NewSchedule(permuted)
		for _, a := range res.Schedule.Assignments() {
			if err := mapped.Assign(perm[a.Event], a.Interval); err != nil {
				t.Logf("mapped schedule infeasible after relabeling: %v", err)
				return false
			}
		}
		orig := choice.ReferenceUtility(inst, res.Schedule)
		relabeled := choice.ReferenceUtility(permuted, mapped)
		if math.Abs(orig-relabeled) > utilityTolerance {
			t.Logf("Ω changed under relabeling: %v -> %v (perm %v)", orig, relabeled, perm)
			return false
		}
		// Per-event attendance must also follow the relabeling.
		for _, a := range res.Schedule.Assignments() {
			w1 := choice.ReferenceEventAttendance(inst, res.Schedule, a.Event)
			w2 := choice.ReferenceEventAttendance(permuted, mapped, perm[a.Event])
			if math.Abs(w1-w2) > utilityTolerance {
				t.Logf("ω(%d) changed under relabeling: %v -> %v", a.Event, w1, w2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGRDUtilityMonotoneInK: enlarging the schedule budget never
// hurts. GRD's selection for k is a prefix of its selection for k+1,
// and every applied assignment has non-negative marginal Ω (per Eq. 1
// a scheduled event only adds user attention mass to its interval),
// so utility must be non-decreasing in k. This is the paper's Fig. 2
// shape as a hard invariant.
func TestGRDUtilityMonotoneInK(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 5, 8, 13, 21, 34} {
		inst := Random(Config{
			Users: 25, Events: 12, Intervals: 4, Competing: 3, Seed: seed,
		})
		prev := 0.0
		for k := 0; k <= inst.NumEvents(); k++ {
			res := grdSolve(t, inst, k)
			if res.Utility < prev-utilityTolerance {
				t.Errorf("seed %d: Ω dropped when k grew %d -> %d: %v -> %v",
					seed, k-1, k, prev, res.Utility)
			}
			if res.Utility < -utilityTolerance {
				t.Errorf("seed %d, k %d: negative utility %v", seed, k, res.Utility)
			}
			prev = res.Utility
		}
	}
}

// TestGRDPrefixStructure pins down why monotonicity holds: the
// schedule GRD commits for budget k is contained in the one it
// commits for budget k+1 (greedy selection is deterministic and
// oblivious to the budget until it stops).
func TestGRDPrefixStructure(t *testing.T) {
	for _, seed := range []uint64{4, 9, 16} {
		inst := Random(Config{Users: 25, Events: 12, Intervals: 4, Competing: 2, Seed: seed})
		var prev map[int]int
		for k := 0; k <= 6; k++ {
			res := grdSolve(t, inst, k)
			cur := map[int]int{}
			for _, a := range res.Schedule.Assignments() {
				cur[a.Event] = a.Interval
			}
			for e, tv := range prev {
				if got, ok := cur[e]; !ok || got != tv {
					t.Errorf("seed %d: assignment (%d,%d) of k=%d schedule missing at k=%d",
						seed, e, tv, k-1, k)
				}
			}
			prev = cur
		}
	}
}
