package sestest

import (
	"fmt"

	"ses/internal/core"
	"ses/internal/interest"
)

// PermuteEvents returns a copy of inst with candidate events relabeled
// by perm (the event at old index e moves to index perm[e]), carrying
// its interest row along. Everything that does not key on event
// identity — users, intervals, resources, competing events, the
// activity model — is shared or copied unchanged. Relabeling is a
// pure renaming, so every schedule-level quantity (Ω, ω, ρ) must be
// invariant under it; the metamorphic property suite relies on that.
func PermuteEvents(inst *core.Instance, perm []int) *core.Instance {
	n := inst.NumEvents()
	if len(perm) != n {
		panic(fmt.Sprintf("sestest: permutation of length %d for %d events", len(perm), n))
	}
	events := make([]core.Event, n)
	cand := interest.NewMatrix(inst.CandInterest.NumUsers, n)
	seen := make([]bool, n)
	for e := 0; e < n; e++ {
		p := perm[e]
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("sestest: invalid permutation %v", perm))
		}
		seen[p] = true
		events[p] = inst.Events[e]
		cand.SetRow(p, inst.CandInterest.Row(e))
	}
	return &core.Instance{
		NumUsers:     inst.NumUsers,
		NumIntervals: inst.NumIntervals,
		Resources:    inst.Resources,
		Events:       events,
		Competing:    append([]core.CompetingEvent(nil), inst.Competing...),
		CandInterest: cand,
		CompInterest: inst.CompInterest,
		Activity:     inst.Activity,
	}
}
