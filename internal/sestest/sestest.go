// Package sestest builds small random SES instances for tests. It is
// imported only from _test files; keeping it as a real package avoids
// duplicating the generator across the choice, solver, experiment and
// root-level test suites.
package sestest

import (
	"fmt"

	"ses/internal/activity"
	"ses/internal/core"
	"ses/internal/interest"
	"ses/internal/randx"
)

// Config controls the random instance generator. Zero fields get
// sensible small defaults from Default.
type Config struct {
	Users     int
	Events    int
	Intervals int
	Competing int
	Locations int
	Resources float64
	// MaxRequired bounds ξe ~ U(MinRequired, MaxRequired).
	MinRequired float64
	MaxRequired float64
	// Density is the probability that a given (user, event) pair has
	// non-zero interest.
	Density float64
	Seed    uint64
}

// Default fills in zero fields.
func Default(cfg Config) Config {
	if cfg.Users == 0 {
		cfg.Users = 20
	}
	if cfg.Events == 0 {
		cfg.Events = 10
	}
	if cfg.Intervals == 0 {
		cfg.Intervals = 4
	}
	if cfg.Locations == 0 {
		cfg.Locations = 3
	}
	if cfg.Resources == 0 {
		cfg.Resources = 10
	}
	if cfg.MaxRequired == 0 {
		cfg.MinRequired = 1
		cfg.MaxRequired = 4
	}
	if cfg.Density == 0 {
		cfg.Density = 0.4
	}
	return cfg
}

// Random builds a random instance. All randomness is derived from
// cfg.Seed, so instances are reproducible.
func Random(cfg Config) *core.Instance {
	cfg = Default(cfg)
	evSrc := randx.Derive(cfg.Seed, "events")
	muSrc := randx.Derive(cfg.Seed, "interest")
	cpSrc := randx.Derive(cfg.Seed, "competing")

	events := make([]core.Event, cfg.Events)
	for i := range events {
		events[i] = core.Event{
			Location: evSrc.IntN(cfg.Locations),
			Required: evSrc.Range(cfg.MinRequired, cfg.MaxRequired),
			Name:     fmt.Sprintf("event-%d", i),
		}
	}
	competing := make([]core.CompetingEvent, cfg.Competing)
	for i := range competing {
		competing[i] = core.CompetingEvent{
			Interval: cpSrc.IntN(cfg.Intervals),
			Name:     fmt.Sprintf("competing-%d", i),
		}
	}

	randomMatrix := func(src *randx.Source, rows int) *interest.Matrix {
		m := interest.NewMatrix(cfg.Users, rows)
		for e := 0; e < rows; e++ {
			var ids []int32
			var vals []float64
			for u := 0; u < cfg.Users; u++ {
				if src.Bool(cfg.Density) {
					ids = append(ids, int32(u))
					vals = append(vals, src.Range(0.05, 1))
				}
			}
			v, err := interest.NewSparseVector(ids, vals)
			if err != nil {
				panic(err)
			}
			m.SetRow(e, v)
		}
		return m
	}

	inst := &core.Instance{
		NumUsers:     cfg.Users,
		NumIntervals: cfg.Intervals,
		Resources:    cfg.Resources,
		Events:       events,
		Competing:    competing,
		CandInterest: randomMatrix(muSrc, cfg.Events),
		CompInterest: randomMatrix(muSrc, cfg.Competing),
		Activity:     activity.UniformHash{Seed: cfg.Seed ^ 0xabcdef},
	}
	if err := inst.Validate(); err != nil {
		panic(fmt.Sprintf("sestest: generated invalid instance: %v", err))
	}
	return inst
}

// NoCompetition returns a copy of cfg guaranteeing zero competing
// events (useful for testing the C = ∅ corner of Eq. 1).
func NoCompetition(cfg Config) Config {
	cfg = Default(cfg)
	cfg.Competing = 0
	return cfg
}
