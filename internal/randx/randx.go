// Package randx provides deterministic random-number utilities used
// throughout the SES reproduction: seeded PCG streams, a stateless
// hash-to-unit function (used for the σ activity model), and exact
// samplers for the distributions the paper's experimental setup needs
// (uniform ranges, Zipf tag popularity, categorical via the alias
// method).
//
// Everything in this package is deterministic given its seed so that
// instances, experiments and tests are reproducible bit-for-bit.
package randx

import (
	"math/rand/v2"
)

// Source is a seeded random stream. It wraps math/rand/v2's PCG so the
// rest of the repository never has to care about the generator choice.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a deterministic stream for the given seed. Distinct
// seeds yield independent-looking streams.
func NewSource(seed uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed, splitmix64(seed+0x9e3779b97f4a7c15)))}
}

// Derive returns a new independent stream keyed by (the source's seed
// material, label). It is used to split one experiment seed into
// per-component streams (users, events, competing events, ...) so that
// changing how one component consumes randomness does not perturb the
// others.
func Derive(seed uint64, label string) *Source {
	h := seed
	for _, b := range []byte(label) {
		h = splitmix64(h ^ uint64(b))
	}
	return NewSource(h)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// IntRange returns a uniform integer in [lo, hi] (inclusive).
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("randx: IntRange with hi < lo")
	}
	return lo + s.rng.IntN(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// SampleWithoutReplacement returns m distinct integers drawn uniformly
// from [0, n). It panics if m > n. The result is in random order.
// For m close to n it shuffles a full permutation; for sparse draws it
// uses rejection with a set, which is O(m) in expectation.
func (s *Source) SampleWithoutReplacement(n, m int) []int {
	if m > n {
		panic("randx: sample size exceeds population")
	}
	if m*3 >= n {
		p := s.rng.Perm(n)
		return p[:m]
	}
	seen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for len(out) < m {
		v := s.rng.IntN(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer; a fast, well-mixed 64-bit
// permutation used for hashing and seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashToUnit maps (seed, a, b) deterministically to [0, 1). It is the
// stateless generator behind the σ(u,t) ~ U(0,1) activity model: no
// |U|×|T| table has to be materialized and every engine observes the
// same value for the same (user, interval) pair.
func HashToUnit(seed uint64, a, b int) float64 {
	h := splitmix64(seed ^ 0x6a09e667f3bcc909)
	h = splitmix64(h ^ uint64(a)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(b)*0xc2b2ae3d27d4eb4f)
	// 53 high bits -> [0,1) with full double precision.
	return float64(h>>11) / float64(1<<53)
}
