package randx

import (
	"math"
	"sort"
)

// Zipf samples integers in [0, n) with P(i) ∝ 1/(i+1)^s using an exact
// inverse-CDF table. The EBSN generator uses it for tag popularity:
// a few tags ("tech", "hiking") are very common, most are rare, which
// is what produces the sparse, skewed Jaccard interest structure the
// paper's Meetup dataset exhibits.
type Zipf struct {
	cdf []float64
}

// NewZipf builds an exact Zipf(n, s) sampler. It panics if n <= 0 or
// s < 0. s = 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: Zipf needs n > 0")
	}
	if s < 0 {
		panic("randx: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against round-off
	return &Zipf{cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns P(i).
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws one value using the stream s.
func (z *Zipf) Sample(s *Source) int {
	u := s.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Alias is Walker's alias method: O(n) setup, O(1) sampling from an
// arbitrary categorical distribution. Used where many draws from the
// same weights are needed (e.g. assigning events to groups).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// It panics if weights is empty, contains a negative value, or sums
// to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("randx: Alias needs at least one weight")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("randx: Alias weights must be non-negative")
		}
		sum += w
	}
	if sum == 0 {
		panic("randx: Alias weights sum to zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; small/large worklists per Vose's variant.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small { // numerical leftovers
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a
}

// N returns the support size.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one category using the stream s.
func (a *Alias) Sample(s *Source) int {
	i := s.IntN(len(a.prob))
	if s.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// UniformMean draws an integer uniformly from [lo, round(2*mean)-lo],
// the widest integer-uniform distribution with lower end lo whose
// expectation is (approximately) mean. The paper selects the number of
// competing events per interval "by a uniform distribution having 8.1
// as mean value"; UniformMean(s, 8.1, 1) realizes that as U{1..15}.
func UniformMean(s *Source, mean float64, lo int) int {
	hi := int(math.Round(2*mean)) - lo
	if hi < lo {
		hi = lo
	}
	return s.IntRange(lo, hi)
}

// Exponential draws from Exp(rate). Used by the check-in log generator
// for inter-arrival gaps.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential needs rate > 0")
	}
	u := s.Float64()
	// u in [0,1): 1-u in (0,1], log is finite.
	return -math.Log(1-u) / rate
}

// Poisson draws from Poisson(lambda) using Knuth's product method for
// small lambda and a normal approximation above 30 (adequate for the
// generator workloads here, which use single-digit lambdas).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		panic("randx: Poisson needs lambda > 0")
	}
	if lambda > 30 {
		v := s.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal draws from N(mean, stddev) via Box–Muller.
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
