package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "users")
	b := Derive(7, "events")
	c := Derive(7, "users")
	if a.Uint64() == b.Uint64() {
		t.Error("derived streams with different labels should differ")
	}
	a2 := Derive(7, "users")
	_ = c
	x := a2.Uint64()
	y := Derive(7, "users").Uint64()
	if x != y {
		t.Error("derived stream is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRange(t *testing.T) {
	s := NewSource(4)
	lo, hi := 1.0, 20.0/3.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := s.Range(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Range out of bounds: %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := (lo + hi) / 2
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("Range mean = %v, want ~%v", mean, want)
	}
}

func TestIntRange(t *testing.T) {
	s := NewSource(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d in 1000 draws", v)
		}
	}
}

func TestIntRangePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5,4) should panic")
		}
	}()
	NewSource(1).IntRange(5, 4)
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := NewSource(6)
	for _, tc := range []struct{ n, m int }{
		{10, 0}, {10, 1}, {10, 3}, {10, 9}, {10, 10}, {1000, 10}, {1000, 900},
	} {
		got := s.SampleWithoutReplacement(tc.n, tc.m)
		if len(got) != tc.m {
			t.Fatalf("n=%d m=%d: got %d samples", tc.n, tc.m, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d m=%d: sample %d out of range", tc.n, tc.m, v)
			}
			if seen[v] {
				t.Fatalf("n=%d m=%d: duplicate sample %d", tc.n, tc.m, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sampling more than the population should panic")
		}
	}()
	NewSource(1).SampleWithoutReplacement(3, 4)
}

func TestHashToUnitBoundsAndDeterminism(t *testing.T) {
	for u := 0; u < 200; u++ {
		for ti := 0; ti < 20; ti++ {
			v := HashToUnit(99, u, ti)
			if v < 0 || v >= 1 {
				t.Fatalf("HashToUnit out of [0,1): %v", v)
			}
			if v != HashToUnit(99, u, ti) {
				t.Fatal("HashToUnit not deterministic")
			}
		}
	}
	if HashToUnit(1, 2, 3) == HashToUnit(2, 2, 3) {
		t.Error("HashToUnit should depend on seed")
	}
	if HashToUnit(1, 2, 3) == HashToUnit(1, 3, 2) {
		t.Error("HashToUnit should not be symmetric in (a, b)")
	}
}

func TestHashToUnitIsUniformish(t *testing.T) {
	// Chi-square-ish sanity check over 10 buckets.
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		v := HashToUnit(1234, i, i*7+1)
		buckets[int(v*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/100*3 || c > n/10+n/100*3 {
			t.Errorf("bucket %d has %d hits, expected ~%d", i, c, n/10)
		}
	}
}

func TestHashToUnitQuickProperty(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		v := HashToUnit(seed, int(a), int(b))
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("Perm produced duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate %v", p)
	}
}
