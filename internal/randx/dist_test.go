package randx

import (
	"math"
	"testing"
)

func TestZipfProbsSumToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.5, 2} {
		z := NewZipf(50, s)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("s=%v: probabilities sum to %v", s, sum)
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(100, 1.2)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("Zipf probabilities should be non-increasing: P(%d)=%v > P(%d)=%v",
				i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("Zipf(n,0) should be uniform, P(%d)=%v", i, z.Prob(i))
		}
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z := NewZipf(20, 1)
	s := NewSource(11)
	const n = 200000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	for i := 0; i < 20; i++ {
		emp := float64(counts[i]) / n
		if math.Abs(emp-z.Prob(i)) > 0.01 {
			t.Errorf("category %d: empirical %v vs pmf %v", i, emp, z.Prob(i))
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) should panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 6, 0.5}
	a := NewAlias(weights)
	s := NewSource(12)
	const n = 300000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(s)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		emp := float64(counts[i]) / n
		want := w / total
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("category %d: empirical %v vs want %v", i, emp, want)
		}
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := NewAlias([]float64{5})
	s := NewSource(13)
	for i := 0; i < 100; i++ {
		if a.Sample(s) != 0 {
			t.Fatal("single-category alias must always return 0")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {1, -1}, {math.NaN()}}
	for i, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewAlias should panic", i)
				}
			}()
			NewAlias(w)
		}()
	}
}

func TestUniformMeanMatchesPaperSetting(t *testing.T) {
	// Paper: competing events per interval drawn uniformly with mean 8.1.
	s := NewSource(14)
	const n = 200000
	sum := 0
	minV, maxV := math.MaxInt, 0
	for i := 0; i < n; i++ {
		v := UniformMean(s, 8.1, 1)
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	mean := float64(sum) / n
	if math.Abs(mean-8.1) > 0.15 {
		t.Errorf("UniformMean(8.1) empirical mean %v", mean)
	}
	if minV < 1 {
		t.Errorf("UniformMean produced %d < lo", minV)
	}
	if maxV > 15 {
		t.Errorf("UniformMean produced %d > 15", maxV)
	}
}

func TestUniformMeanDegenerate(t *testing.T) {
	s := NewSource(15)
	for i := 0; i < 100; i++ {
		if v := UniformMean(s, 1, 1); v != 1 {
			t.Fatalf("UniformMean(1,1) = %d, want 1", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSource(16)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(2.0)
		if v < 0 {
			t.Fatalf("Exponential produced negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exponential(2) mean %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := NewSource(17)
	for _, lambda := range []float64{0.5, 3, 8.1, 40} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(18)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance %v", variance)
	}
}

func BenchmarkHashToUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = HashToUnit(42, i, i>>3)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(5000, 1.1)
	s := NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(s)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 5000)
	for i := range w {
		w[i] = float64(i%17) + 0.5
	}
	a := NewAlias(w)
	s := NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(s)
	}
}
