// Festival: the paper's introductory Summerfest scenario, built by
// hand with the InstanceBuilder.
//
// A festival has three stages and two evening slots (Monday, Tuesday).
// The lineup candidates are a Pop concert, a fashion show, a theater
// play and a rock concert. A rival venue runs a competing Pop concert
// on Monday evening. Alice loves Pop and fashion; when both of her
// events collide with the rival show, Luce's rule splits her — the
// organizer's job is to schedule so that it doesn't.
package main

import (
	"context"
	"fmt"
	"log"

	"ses"
)

const (
	monday  = 0
	tuesday = 1
)

func main() {
	const (
		alice = iota
		bob
		carol
		dave
		numUsers
	)
	userName := []string{"Alice", "Bob", "Carol", "Dave"}

	b := ses.NewInstanceBuilder(numUsers, 2, 10)
	pop := b.AddEvent(0 /* main stage */, 4, "pop-concert")
	fashion := b.AddEvent(1 /* side stage */, 3, "fashion-show")
	theater := b.AddEvent(2 /* theater tent */, 5, "theater-play")
	rock := b.AddEvent(0 /* main stage */, 4, "rock-concert")

	rival := b.AddCompeting(monday, "rival-pop-concert")

	// Interests (µ).
	b.SetInterest(alice, pop, 0.9)
	b.SetInterest(alice, fashion, 0.7)
	b.SetCompetingInterest(alice, rival, 0.6)
	b.SetInterest(bob, rock, 0.8)
	b.SetInterest(bob, pop, 0.3)
	b.SetInterest(carol, fashion, 0.6)
	b.SetInterest(carol, theater, 0.5)
	b.SetInterest(dave, theater, 0.9)
	b.SetCompetingInterest(dave, rival, 0.2)

	// Availability (σ): Alice works late on Tuesdays — the paper's
	// second scenario.
	sigma := [][]float64{
		{0.9, 0.1}, // Alice: free Monday, working Tuesday
		{0.8, 0.8},
		{0.7, 0.9},
		{0.5, 0.6},
	}
	act, err := ses.TableActivity(sigma)
	if err != nil {
		log.Fatal(err)
	}
	b.SetActivity(act)

	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A naive plan: everything big on Monday.
	naive := ses.NewSchedule(inst)
	must(naive.Assign(pop, monday))
	must(naive.Assign(fashion, monday))
	fmt.Println("naive plan: pop-concert and fashion-show both on Monday (rival show in town)")
	report(inst, naive, userName, []int{pop, fashion})

	// GRD's plan for k = 2.
	res, err := grd().Solve(context.Background(), inst, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGRD's plan:")
	for _, a := range res.Schedule.Assignments() {
		day := "Monday"
		if a.Interval == tuesday {
			day = "Tuesday"
		}
		fmt.Printf("  %-13s -> %s\n", inst.Events[a.Event].Name, day)
	}
	report(inst, res.Schedule, userName, scheduledEvents(res.Schedule, inst))

	fmt.Printf("\nΩ(naive) = %.3f   Ω(GRD) = %.3f\n",
		ses.Utility(inst, naive), res.Utility)

	// With k = 4 the resource budget (θ=10) and the shared main stage
	// force real trade-offs: pop and rock cannot share a day.
	res4, err := grd().Solve(context.Background(), inst, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull lineup (k=4) scheduled %d events, Ω = %.3f:\n",
		res4.Schedule.Size(), res4.Utility)
	for _, a := range res4.Schedule.Assignments() {
		day := "Monday"
		if a.Interval == tuesday {
			day = "Tuesday"
		}
		fmt.Printf("  %-13s -> %s\n", inst.Events[a.Event].Name, day)
	}
}

// report prints each user's attendance probabilities for the given
// scheduled events.
func report(inst *ses.Instance, s *ses.Schedule, names []string, events []int) {
	for u := 0; u < inst.NumUsers; u++ {
		line := fmt.Sprintf("  %-6s:", names[u])
		any := false
		for _, e := range events {
			rho := ses.AttendanceProb(inst, s, u, e)
			if rho > 0 {
				line += fmt.Sprintf("  P(%s)=%.2f", inst.Events[e].Name, rho)
				any = true
			}
		}
		if any {
			fmt.Println(line)
		}
	}
}

func scheduledEvents(s *ses.Schedule, inst *ses.Instance) []int {
	var out []int
	for _, a := range s.Assignments() {
		out = append(out, a.Event)
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// grd builds the greedy solver through the options facade.
func grd() ses.Solver {
	s, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	return s
}
