// Simulate: schedule a lineup with GRD, then stress-test the schedule
// with the Monte Carlo attendance simulator — each run draws every
// user's "do I go out tonight?" coin (σ) and, if they do, a single
// event choice per Luce's rule over their interests (µ).
//
// The analytical utility Ω of the paper is an expectation; the
// simulator shows the distribution around it, which is what an
// organizer pricing a venue actually needs (e.g. "how bad is the
// unlucky 5th-percentile night?").
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ses"
)

func main() {
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      13,
		NumUsers:  4000,
		NumEvents: 2048,
		NumTags:   2000,
		NumGroups: 150,
	})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: 12, Intervals: 18, CandidateEvents: 24, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := grd().Solve(context.Background(), inst, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GRD schedule: %d events, analytical Ω = %.1f expected attendees\n\n",
		res.Schedule.Size(), res.Utility)

	out, err := ses.Simulate(inst, res.Schedule, ses.SimConfig{Runs: 2000, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d realizations:\n", out.Runs)
	fmt.Printf("  total attendance: mean %.1f (analytical %.1f), min %.0f, max %.0f, σ %.1f\n",
		out.Total.Mean(), res.Utility, out.Total.Min(), out.Total.Max(), out.Total.StdDev())
	fmt.Printf("  lost to competing events per night: %.1f users on average\n",
		out.CompetingLosses.Mean())
	fmt.Printf("  interested but stayed home: %.1f users on average\n\n", out.StayedHome.Mean())

	// Per-event: analytical vs simulated, sorted by expected draw.
	type row struct {
		name                     string
		analytic, simMean, simSD float64
	}
	var rows []row
	for _, a := range res.Schedule.Assignments() {
		rows = append(rows, row{
			name:     inst.Events[a.Event].Name,
			analytic: ses.EventAttendance(inst, res.Schedule, a.Event),
			simMean:  out.PerEvent[a.Event].Mean(),
			simSD:    out.PerEvent[a.Event].StdDev(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].analytic > rows[j].analytic })
	fmt.Printf("%-12s %10s %12s %8s\n", "event", "ω (Eq.2)", "simulated", "±σ")
	for _, r := range rows {
		fmt.Printf("%-12s %10.1f %12.1f %8.1f\n", r.name, r.analytic, r.simMean, r.simSD)
	}
}

// grd builds the greedy solver through the options facade.
func grd() ses.Solver {
	s, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	return s
}
