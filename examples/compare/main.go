// Compare: run every solver in the suite on the same instance and,
// on a small instance, measure each heuristic's gap to the exact
// optimum (the paper proves SES strongly NP-hard, so exact solving is
// only feasible at toy scale).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ses"
)

func main() {
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      5,
		NumUsers:  2500,
		NumEvents: 2048,
		NumTags:   2000,
		NumGroups: 120,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mid-size comparison: every polynomial solver.
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: 30, Intervals: 45, CandidateEvents: 60, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mid-size instance: |E|=%d |T|=%d |C|=%d users=%d, k=30\n\n",
		inst.NumEvents(), inst.NumIntervals, len(inst.Competing), inst.NumUsers)
	fmt.Printf("%-14s %-12s %-10s %-10s\n", "solver", "utility", "time", "scheduled")
	for _, name := range []string{"grd", "grdlazy", "top", "topfill", "rand", "localsearch", "anneal"} {
		s, err := ses.New(name, ses.WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := s.Solve(context.Background(), inst, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12.1f %-10s %-10d\n",
			name, res.Utility, time.Since(start).Round(time.Millisecond), res.Schedule.Size())
	}

	// Toy instance: optimality gaps against the exact solver.
	tiny, err := ses.BuildInstance(ds, ses.PaperParams{
		K: 4, Intervals: 3, CandidateEvents: 9, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := ses.New("exact")
	if err != nil {
		log.Fatal(err)
	}
	opt, err := exact.Solve(context.Background(), tiny, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntoy instance (|E|=9, |T|=3, k=4): exact optimum Ω* = %.2f\n", opt.Utility)
	for _, name := range []string{"grd", "top", "rand"} {
		s, _ := ses.New(name, ses.WithSeed(9))
		res, err := s.Solve(context.Background(), tiny, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s Ω = %-8.2f (%.1f%% of optimal)\n",
			name, res.Utility, 100*res.Utility/opt.Utility)
	}
}
