// Venue: a club planning its next month using σ estimated from
// check-in history — the estimation path the paper's footnote
// describes ("this probability can be estimated by examining the
// user's past behavior (e.g., number of check-ins)").
//
// The club has 28 evening slots (4 weeks × 7 weekdays), two rooms, and
// 16 candidate nights. Member availability is learned from a year of
// synthetic check-ins: some members are weekend people, some go out on
// Wednesdays. A competing festival occupies the second weekend.
package main

import (
	"context"
	"fmt"
	"log"

	"ses"
)

const (
	numMembers = 400
	slots      = 7  // weekday slots (0 = Monday ... 6 = Sunday)
	weeks      = 52 // one year of history
)

func main() {
	// 1. A year of check-ins; slot = weekday.
	checkins, truth, err := ses.GenerateCheckIns(ses.CheckInConfig{
		Seed:        3,
		NumUsers:    numMembers,
		NumSlots:    slots,
		Periods:     weeks,
		BaseRateMin: 0.05,
		BaseRateMax: 0.5,
		PeakSlots:   2, // everyone has two favorite nights
		PeakBoost:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned from %d check-ins by %d members over %d weeks\n",
		len(checkins), numMembers, weeks)

	// 2. Estimate σ per (member, weekday) and map the 28 scheduling
	// intervals onto weekdays.
	slotOfInterval := make([]int, 28)
	for t := range slotOfInterval {
		slotOfInterval[t] = t % 7
	}
	sigma, err := ses.EstimateActivity(checkins, numMembers, slots, weeks, 1, slotOfInterval)
	if err != nil {
		log.Fatal(err)
	}
	// Estimator sanity: report mean absolute error vs ground truth.
	var mae float64
	for u := 0; u < numMembers; u++ {
		for s := 0; s < slots; s++ {
			d := sigma.Prob(u, s) - truth[u][s]
			if d < 0 {
				d = -d
			}
			mae += d
		}
	}
	fmt.Printf("σ̂ mean absolute error vs ground truth: %.3f\n\n", mae/float64(numMembers*slots))

	// 3. The month's candidate nights, built by hand. Interests are
	// genre affinities; every member belongs to one of four crowds.
	b := ses.NewInstanceBuilder(numMembers, 28, 8)
	b.SetActivity(sigma)
	genres := []string{"techno", "jazz", "indie", "salsa"}
	var nights []int
	for i := 0; i < 16; i++ {
		room := i % 2 // two rooms
		name := fmt.Sprintf("%s-night-%d", genres[i%4], i/4)
		nights = append(nights, b.AddEvent(room, 4, name))
	}
	for u := 0; u < numMembers; u++ {
		crowd := u % 4
		for i, e := range nights {
			switch {
			case i%4 == crowd:
				b.SetInterest(u, e, 0.8) // their genre
			case (i+1)%4 == crowd:
				b.SetInterest(u, e, 0.2) // adjacent taste
			}
		}
	}
	// A competing festival on the second weekend (intervals 12, 13 =
	// Saturday/Sunday of week 2) that everyone is somewhat into.
	for _, t := range []int{12, 13} {
		c := b.AddCompeting(t, fmt.Sprintf("festival-day-%d", t-11))
		for u := 0; u < numMembers; u++ {
			b.SetCompetingInterest(u, c, 0.5)
		}
	}
	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Schedule 8 nights.
	res, err := grd().Solve(context.Background(), inst, 8)
	if err != nil {
		log.Fatal(err)
	}
	weekday := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	fmt.Printf("scheduled %d nights, expected door count Ω = %.1f:\n",
		res.Schedule.Size(), res.Utility)
	for _, a := range res.Schedule.Assignments() {
		fmt.Printf("  %-15s week %d %s   expecting %5.1f members\n",
			inst.Events[a.Event].Name, a.Interval/7+1, weekday[a.Interval%7],
			ses.EventAttendance(inst, res.Schedule, a.Event))
	}

	// The festival weekend should be avoided; check.
	festWeekend := 0
	for _, a := range res.Schedule.Assignments() {
		if a.Interval == 12 || a.Interval == 13 {
			festWeekend++
		}
	}
	fmt.Printf("\nnights placed against the festival weekend: %d\n", festWeekend)
}

// grd builds the greedy solver through the options facade.
func grd() ses.Solver {
	s, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	return s
}
