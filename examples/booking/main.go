// Booking: a venue's scheduling desk as a long-lived session. The
// organizer opens a ses.Scheduler over this season's lineup, then the
// portfolio keeps changing — a late booking arrives, a rival venue
// announces a show, an act cancels, a contract pins a headliner to a
// specific night. After each change, Resolve repairs the schedule
// incrementally: only the initial scores the mutation invalidated are
// recomputed (watch the InitialScores counter), yet the result is
// exactly what a from-scratch greedy solve would produce.
//
// The example also shows the context contract: a canceled context
// aborts a resolve without touching the committed schedule, and a
// deadline returns the feasible best-so-far with Delta.Stopped set.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"ses"
)

func main() {
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      3,
		NumUsers:  3000,
		NumEvents: 2048,
		NumTags:   2000,
		NumGroups: 120,
	})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: 12, Intervals: 16, CandidateEvents: 24, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	sched, err := ses.NewScheduler(inst, 12)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Opening solve: the full |E|·|T| scoring pass happens once.
	d, err := sched.Resolve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("season opened: %d events scheduled, Ω = %.1f (scored %d assignments)\n",
		len(sched.Schedule()), d.Utility, d.Counters.InitialScores)

	// A late booking request arrives: a popular act, broad appeal.
	interest := map[int]float64{}
	for u := 0; u < inst.NumUsers; u += 3 {
		interest[u] = 0.6
	}
	late, err := sched.AddEvent(ses.Event{Location: 0, Required: 2, Name: "late-booking"}, interest)
	if err != nil {
		log.Fatal(err)
	}
	d, err = sched.Resolve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late booking #%d: +%d -%d moved %d, Ω = %.1f (rescored only %d)\n",
		late, len(d.Added), len(d.Removed), len(d.Moved), d.Utility, d.Counters.InitialScores)

	// A rival venue announces a show on our busiest night.
	busiest := sched.Schedule()[0].Interval
	if _, err := sched.AddCompeting(ses.CompetingEvent{Interval: busiest, Name: "rival-show"}, interest); err != nil {
		log.Fatal(err)
	}
	d, err = sched.Resolve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rival at interval %d: moved %d events, Ω = %.1f (rescored only %d)\n",
		busiest, len(d.Moved), d.Utility, d.Counters.InitialScores)

	// An act cancels; a contract pins the late booking to a fixed
	// night. Neither invalidates a single cached score.
	if err := sched.CancelEvent(sched.Schedule()[1].Event); err != nil {
		log.Fatal(err)
	}
	if err := sched.Pin(late, busiest); err != nil {
		log.Fatal(err)
	}
	d, err = sched.Resolve(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancellation + pin: +%d -%d moved %d, Ω = %.1f (rescored %d)\n",
		len(d.Added), len(d.Removed), len(d.Moved), d.Utility, d.Counters.InitialScores)

	// A canceled context aborts without committing anything.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	before := sched.Utility()
	if _, err := sched.Resolve(canceled); !errors.Is(err, context.Canceled) {
		log.Fatalf("expected context.Canceled, got %v", err)
	}
	fmt.Printf("canceled resolve: schedule untouched (Ω still %.1f)\n", before)

	// Deadlines work end to end on the one-shot solvers' side too:
	// an anytime solver under deadline returns its best-so-far.
	grd, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	expired, cancel2 := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel2()
	res, err := grd.Solve(expired, sched.Instance(), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grd under expired deadline: stopped=%q with %d events — work preserved, not discarded\n",
		res.Stopped, res.Schedule.Size())
}
