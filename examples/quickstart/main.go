// Quickstart: generate a synthetic event-based social network, build a
// scheduling instance with the paper's parameters, and let the greedy
// algorithm pick which 15 events to run and when.
package main

import (
	"context"
	"fmt"
	"log"

	"ses"
)

func main() {
	// A small Meetup-like network: users and events carry topic tags;
	// a user's interest in an event is the Jaccard similarity of their
	// tag sets.
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      7,
		NumUsers:  3000,
		NumEvents: 2048,
		NumTags:   2000,
		NumGroups: 120,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sample a problem instance: 30 candidate events, 20 intervals,
	// competing third-party events per interval, resource budget and
	// locations at the paper's defaults.
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K:               15,
		Intervals:       20,
		CandidateEvents: 30,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d users, %d candidate events, %d intervals, %d competing events\n\n",
		inst.NumUsers, inst.NumEvents(), inst.NumIntervals, len(inst.Competing))

	// Schedule 15 events with the paper's greedy algorithm (GRD).
	grd, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	res, err := grd.Solve(context.Background(), inst, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GRD scheduled %d events; total expected attendance Ω = %.1f\n\n",
		res.Schedule.Size(), res.Utility)

	for _, a := range res.Schedule.Assignments() {
		fmt.Printf("  %-12s -> interval %-3d expecting %6.1f attendees\n",
			inst.Events[a.Event].Name, a.Interval,
			ses.EventAttendance(inst, res.Schedule, a.Event))
	}

	// How much better than just assigning randomly?
	random, err := ses.New("rand", ses.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := random.Solve(context.Background(), inst, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom scheduling achieves Ω = %.1f; greedy wins by %.1f%%\n",
		rnd.Utility, 100*(res.Utility-rnd.Utility)/rnd.Utility)
}
