// Social: the paper's interest function µ "can be estimated by
// considering a large number of factors (e.g., preferences, social
// connections)". This example estimates µ two ways — pure tag
// similarity versus a social blend where a user inherits part of
// their friends' tastes — and shows how the blend changes both the
// audience estimates and the schedule GRD picks.
package main

import (
	"context"
	"fmt"
	"log"

	"ses"
	"ses/internal/interest"
)

func main() {
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      17,
		NumUsers:  3000,
		NumEvents: 1024,
		NumTags:   2000,
		NumGroups: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	graph, err := ds.GenerateSocialGraph(ses.SocialConfig{Seed: 17, AvgDegree: 10, Rewire: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friendship graph: %d users, average degree %.1f\n\n",
		len(graph.Adj), graph.AvgDegree())

	// Build the same instance twice: once with plain Jaccard interest,
	// once with the social blend (60%% own taste, 40%% friends').
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: 10, Intervals: 15, CandidateEvents: 20, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Recompute the candidate interest with the social blend; the
	// builder records which pool events it sampled in Event.Name
	// ("pool-<id>"), so reuse the instance and swap the matrix.
	poolIDs := make([]int, inst.NumEvents())
	for i, ev := range inst.Events {
		if _, err := fmt.Sscanf(ev.Name, "pool-%d", &poolIDs[i]); err != nil {
			log.Fatal(err)
		}
	}
	sim := interest.Thresholded(interest.Jaccard, 0.04)
	socialMu, err := ds.SocialInterestFor(poolIDs, graph, 0.6, 0.02, sim)
	if err != nil {
		log.Fatal(err)
	}
	socialInst := *inst
	socialInst.CandInterest = socialMu

	base, err := grd().Solve(context.Background(), inst, 10)
	if err != nil {
		log.Fatal(err)
	}
	soc, err := grd().Solve(context.Background(), &socialInst, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-14s %-14s\n", "", "tag-only µ", "social-blend µ")
	fmt.Printf("%-28s %-14.1f %-14.1f\n", "expected attendance Ω", base.Utility, soc.Utility)
	fmt.Printf("%-28s %-14d %-14d\n", "candidate-interest entries",
		inst.CandInterest.NNZ(), socialMu.NNZ())

	// How different are the two schedules?
	baseAt := map[int]int{}
	for _, a := range base.Schedule.Assignments() {
		baseAt[a.Event] = a.Interval
	}
	same, moved, swapped := 0, 0, 0
	for _, a := range soc.Schedule.Assignments() {
		if t, ok := baseAt[a.Event]; !ok {
			swapped++
		} else if t == a.Interval {
			same++
		} else {
			moved++
		}
	}
	fmt.Printf("\nschedule drift under social interest: %d identical, %d moved, %d replaced\n",
		same, moved, swapped)
	fmt.Println("\nthe social blend redistributes interest mass: each user's direct affinity is")
	fmt.Println("discounted toward their friends' average, which widens some audiences (friends")
	fmt.Println("drag friends along), thins others, and reorders which events are worth running —")
	fmt.Println("the same schedule optimized under one µ estimate is suboptimal under the other.")
}

// grd builds the greedy solver through the options facade.
func grd() ses.Solver {
	s, err := ses.New("grd")
	if err != nil {
		log.Fatal(err)
	}
	return s
}
