// Command sesbench regenerates the paper's evaluation (Fig. 1a–1d) as
// terminal tables and ASCII charts.
//
// Usage:
//
//	sesbench [-fig all|1a|1b|1c|1d|sens|engines|objectives|resolve|wal|scaling|cluster]
//	         [-scale full|medium|small]
//	         [-reps N] [-seed S] [-algos paper|extended] [-csv dir] [-v]
//	         [-workers W] [-par P] [-json file] [-quick] [-verify]
//
// -fig sens runs the sensitivity sweeps over θ (resources), location
// count and competing intensity — the parameters Section IV-A fixes.
//
// -fig engines microbenchmarks the choice engines (Score, Apply,
// IntervalUtility on the current sorted-accumulator Sparse engine, the
// previous map-based SparseMap engine, and the paper-faithful Dense
// engine) and writes the results as JSON to the -json file.
//
// -fig objectives microbenchmarks the same hot paths on the Sparse
// engine under each registered objective (omega, attendance,
// fairness), pricing the objective layer's indirection and the
// nonlinear fairness fold; results go to the -json file (default
// BENCH_objective.json).
//
// -fig resolve measures the session layer: after single mutations
// (interest update, late event, new competitor, cancellation, pin),
// an incremental ses.Scheduler.Resolve is compared with a from-scratch
// re-solve — identical utility required, InitialScores contrasted —
// and the results are written as JSON to the -json file (default
// BENCH_resolve.json).
//
// -fig wal prices the durable store's write-ahead log fsync policies
// (always / interval / none): raw append latency percentiles, durable
// ApplyBatch round trips per policy, and the group-commit section
// (lone-appender latency, concurrent appenders with/without group
// commit, realized records per fsync), written to the -json file
// (default BENCH_wal.json). It needs no dataset and runs in seconds.
//
// -fig scaling measures engine solves, pipelined store resolves and
// group-commit WAL appends at GOMAXPROCS 1/2/4/8 and writes the
// curve with the host's CPU count to the -json file (default
// BENCH_scaling.json). The store curve carries a CI-enforced floor —
// 4-core throughput at least 2× 1-core — checked whenever the
// measuring host has ≥ 4 CPUs. -quick shrinks the workload for CI
// smokes; -verify skips measuring and re-validates an existing
// artifact's schema (and, if it was measured on a multi-core host,
// its floor).
//
// -fig scale measures resolve latency against user count (10k / 100k
// / 1M users, streamed into memory-mapped colstore instances by
// scalegen) for the sparse production engine and the candidate-list
// pruned engine, cold (from-scratch GRD) and warm (a live session
// re-resolving across Pin/Unpin mutations), and writes the curve to
// the -json file (default BENCH_scale.json). On full artifacts from
// hosts with ≥ 4 CPUs, verification enforces that the pruned engine's
// warm latency is sublinear in users and beats the sparse engine at
// 1M users; -quick shrinks the sizes for CI smokes, -verify
// re-validates the committed artifact.
//
// -fig cluster boots replicated durable clusters in-process (full-mesh
// WAL shipping over loopback HTTP, fsync-always group-commit logs) and
// writes BENCH_cluster.json: a throughput curve over 1/2/3 nodes and a
// kill -9 failover timeline (router detection, promotion, first
// post-failover write) with acknowledged counters verified preserved.
// The multi-node ≥ 1.5× single-node floor is enforced on hosts with
// ≥ 4 CPUs; -quick shrinks the workload, -verify re-validates the
// committed artifact.
//
// -fig obs prices the observability layer (ses/internal/obs) and
// writes BENCH_obs.json: pipelined batch-commit throughput with
// observability off versus on (every request traced end-to-end, hub
// sink installed), a trace-ring microbenchmark (spans/s into the
// bounded ring), and an SSE fan-out microbenchmark (events/s through
// the hub with live subscribers). The ≤ 5% tracing-overhead floor is
// enforced on hosts with ≥ 4 CPUs; -quick shrinks the workload,
// -verify re-validates the committed artifact.
//
// -scale full uses the Meetup-California dimensions of the paper
// (42,444 users); medium (default) and small reduce the user count so
// a sweep finishes in minutes/seconds while preserving the comparative
// shape. Utility figures and time figures come from the same runs, so
// -fig 1a also prints 1b's timing series (and 1c also prints 1d's).
//
// -workers sets the solver-internal scoring parallelism (0 = all
// cores); schedules and utilities are byte-identical for any value.
// -par runs that many independent (point, repetition) trials at once;
// aggregate statistics are unchanged, but per-run wall-clock timings
// get noisier when trials share cores, so keep -par 1 when the time
// series is the point of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	"ses/internal/ebsn"
	"ses/internal/experiment"
	"ses/internal/solver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sesbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: all, 1a, 1b, 1c, 1d, sens, engines, objectives, resolve, wal, scaling, scale, cluster, obs")
	scale := fs.String("scale", "medium", "dataset scale: full (paper, 42444 users), medium (8000), small (2000)")
	reps := fs.Int("reps", 3, "repetitions (instances) per sweep point")
	seed := fs.Uint64("seed", 42, "master seed")
	algos := fs.String("algos", "paper", "algorithm set: paper (grd/top/rand) or extended")
	csvDir := fs.String("csv", "", "also write per-figure CSV files into this directory")
	verbose := fs.Bool("v", false, "stream per-run progress")
	workers := fs.Int("workers", 0, "solver scoring goroutines (0 = all cores, 1 = serial; identical output)")
	par := fs.Int("par", 1, "independent trials run concurrently (identical statistics, noisier timings)")
	jsonPath := fs.String("json", "", "output file for -fig engines/objectives/resolve/wal/scaling/cluster (defaults BENCH_<fig>.json)")
	quick := fs.Bool("quick", false, "with -fig scaling/cluster: shrink the workload for CI smokes")
	verify := fs.Bool("verify", false, "with -fig scaling/cluster: validate the existing -json artifact instead of measuring")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wantK := *fig == "all" || *fig == "1a" || *fig == "1b"
	wantT := *fig == "all" || *fig == "1c" || *fig == "1d"
	wantSens := *fig == "sens"
	wantEngines := *fig == "engines"
	wantObjectives := *fig == "objectives"
	wantResolve := *fig == "resolve"
	wantWAL := *fig == "wal"
	wantScaling := *fig == "scaling"
	wantScale := *fig == "scale"
	wantCluster := *fig == "cluster"
	wantObs := *fig == "obs"
	if !wantK && !wantT && !wantSens && !wantEngines && !wantObjectives && !wantResolve && !wantWAL && !wantScaling && !wantScale && !wantCluster && !wantObs {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	// Catch a silently-ignored flag before a potentially hours-long
	// sweep rather than after it.
	if *jsonPath != "" && !wantEngines && !wantObjectives && !wantResolve && !wantWAL && !wantScaling && !wantScale && !wantCluster && !wantObs {
		return fmt.Errorf("-json only applies to -fig engines/objectives/resolve/wal/scaling/scale/cluster/obs")
	}
	if (*quick || *verify) && !wantScaling && !wantScale && !wantCluster && !wantObs {
		return fmt.Errorf("-quick/-verify only apply to -fig scaling/scale/cluster/obs")
	}
	if *jsonPath == "" {
		switch {
		case wantResolve:
			*jsonPath = "BENCH_resolve.json"
		case wantObjectives:
			*jsonPath = "BENCH_objective.json"
		case wantWAL:
			*jsonPath = "BENCH_wal.json"
		case wantScaling:
			*jsonPath = "BENCH_scaling.json"
		case wantScale:
			*jsonPath = "BENCH_scale.json"
		case wantCluster:
			*jsonPath = "BENCH_cluster.json"
		case wantObs:
			*jsonPath = "BENCH_obs.json"
		default:
			*jsonPath = "BENCH_engine.json"
		}
	}
	if wantWAL {
		// The WAL figure prices fsync, not solving: it needs no EBSN
		// dataset, so it dispatches before the generation step.
		return benchWAL(ctx, out, *seed, *jsonPath)
	}
	if wantScaling {
		// Likewise dataset-free: instances come from sestest.
		return benchScaling(ctx, out, *seed, *jsonPath, *quick, *verify)
	}
	if wantScale {
		// Dataset-free: instances are streamed by scalegen into
		// memory-mapped colstore files.
		return benchScale(ctx, out, *seed, *jsonPath, *quick, *verify)
	}
	if wantCluster {
		// Dataset-free too: replicated in-process nodes over loopback.
		return benchCluster(ctx, out, *seed, *jsonPath, *quick, *verify)
	}
	if wantObs {
		// Dataset-free: prices the observability layer against itself.
		return benchObs(ctx, out, *seed, *jsonPath, *quick, *verify)
	}

	var ecfg ebsn.Config
	switch *scale {
	case "full":
		ecfg = ebsn.DefaultConfig(*seed)
	case "medium":
		ecfg = ebsn.DefaultConfig(*seed)
		ecfg.NumUsers = 8000
		ecfg.NumEvents = 8192
		ecfg.NumTags = 3000
		ecfg.NumGroups = 400
	case "small":
		ecfg = ebsn.DefaultConfig(*seed)
		ecfg.NumUsers = 2000
		ecfg.NumEvents = 4096
		ecfg.NumTags = 2000
		ecfg.NumGroups = 150
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	fmt.Fprintf(out, "generating EBSN dataset (%d users, %d events, seed %d)...\n",
		ecfg.NumUsers, ecfg.NumEvents, *seed)
	ds, err := ebsn.Generate(ecfg)
	if err != nil {
		return err
	}

	scfg := solver.Config{Workers: *workers}
	cfg := experiment.Config{Dataset: ds, Reps: *reps, Seed: *seed, Concurrency: *par, SolverWorkers: *workers}
	switch *algos {
	case "paper":
		cfg.Algorithms = experiment.PaperAlgorithms(scfg)
	case "extended":
		cfg.Algorithms = experiment.ExtendedAlgorithms(scfg)
	default:
		return fmt.Errorf("unknown -algos %q", *algos)
	}
	if *verbose {
		cfg.Progress = out
	}

	if wantEngines {
		return benchEngines(out, ds, *seed, *jsonPath)
	}
	if wantObjectives {
		return benchObjectives(out, ds, *seed, *jsonPath)
	}
	if wantResolve {
		return benchResolve(ctx, out, ds, *seed, *workers, *jsonPath)
	}

	if wantK {
		ks := experiment.DefaultKs()
		if *scale == "small" {
			ks = []int{25, 50, 100, 150, 200}
		}
		fmt.Fprintf(out, "\n== sweep over k (|T|=3k/2, |E|=2k), %d reps ==\n\n", cfg.Reps)
		sw, err := experiment.VaryK(ctx, cfg, ks)
		if err != nil {
			return err
		}
		if err := emit(out, sw, "Fig 1a: Utility vs k", "Fig 1b: Time vs k", *csvDir, "fig1a", "fig1b"); err != nil {
			return err
		}
	}
	if wantT {
		const k = 100
		fmt.Fprintf(out, "\n== sweep over |T| (k=%d, |E|=2k), %d reps ==\n\n", k, cfg.Reps)
		sw, err := experiment.VaryT(ctx, cfg, k, experiment.DefaultTFactors())
		if err != nil {
			return err
		}
		if err := emit(out, sw, "Fig 1c: Utility vs |T|", "Fig 1d: Time vs |T|", *csvDir, "fig1c", "fig1d"); err != nil {
			return err
		}
	}
	if wantSens {
		const k = 100
		fmt.Fprintf(out, "\n== sensitivity: resources θ (k=%d) ==\n\n", k)
		sw, err := experiment.VaryResources(ctx, cfg, k, experiment.DefaultThetas())
		if err != nil {
			return err
		}
		if err := emit(out, sw, "Utility vs θ", "Time vs θ", *csvDir, "sens_theta_u", "sens_theta_t"); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n== sensitivity: locations (k=%d) ==\n\n", k)
		sw, err = experiment.VaryLocations(ctx, cfg, k, experiment.DefaultLocationCounts())
		if err != nil {
			return err
		}
		if err := emit(out, sw, "Utility vs locations", "Time vs locations", *csvDir, "sens_loc_u", "sens_loc_t"); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n== sensitivity: competing events per interval (k=%d) ==\n\n", k)
		sw, err = experiment.VaryCompeting(ctx, cfg, k, experiment.DefaultCompetingMeans())
		if err != nil {
			return err
		}
		if err := emit(out, sw, "Utility vs competing intensity", "Time vs competing intensity", *csvDir, "sens_comp_u", "sens_comp_t"); err != nil {
			return err
		}
	}
	return nil
}

// emit prints the utility and time tables + charts for one sweep and
// optionally writes CSVs.
func emit(out io.Writer, sw *experiment.Sweep, utitle, ttitle, csvDir, uname, tname string) error {
	if err := sw.Table(experiment.Utility, utitle).Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, sw.Chart(experiment.Utility, utitle+" (shape)"))
	fmt.Fprintln(out)
	if err := sw.Table(experiment.Time, ttitle).Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, sw.Chart(experiment.Time, ttitle+" (shape, seconds)"))
	fmt.Fprintln(out)
	if err := sw.Table(experiment.Size, "Scheduled events (|S|) per method").Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		for _, f := range []struct {
			metric experiment.Metric
			name   string
		}{{experiment.Utility, uname}, {experiment.Time, tname}} {
			path := filepath.Join(csvDir, f.name+".csv")
			file, err := os.Create(path)
			if err != nil {
				return err
			}
			err = sw.Table(f.metric, "").CSV(file)
			if cerr := file.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
	}
	return nil
}
