package main

// -fig cluster prices the replicated cluster of internal/cluster: a
// throughput curve over node counts (each node a durable store with
// its own group-commit WAL, full-mesh WAL shipping between them) and
// a kill -9 failover timeline — detection, promotion, first
// post-failover write — with the acknowledged counters verified to
// come through the promotion exactly. The throughput floor
// (multi-node at least clusterFloorX times single-node) is enforced
// whenever the measuring host has enough cores for the comparison to
// be physical, mirroring the scaling fig's gating.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ses"
	"ses/internal/cluster"
	"ses/internal/session"
	"ses/internal/sestest"
	"ses/internal/stats"
	"ses/internal/tablefmt"
)

// clusterThroughputPoint is one node-count's measured commit rate.
type clusterThroughputPoint struct {
	Nodes     int     `json:"nodes"`
	Sessions  int     `json:"sessions"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	SpeedupX  float64 `json:"speedup_x"` // vs the 1-node point
}

// clusterFailover is the kill -9 recovery timeline.
type clusterFailover struct {
	KillToDownMS     float64 `json:"kill_to_down_ms"`
	KillToPromotedMS float64 `json:"kill_to_promoted_ms"`
	KillToWriteMS    float64 `json:"kill_to_first_write_ms"`
	AdoptedSessions  int     `json:"adopted_sessions"`
	// AckedPreserved reports whether every session the dead primary
	// had acknowledged before the kill survived the promotion with its
	// exact mutation/batch/resolve counters.
	AckedPreserved bool `json:"acked_preserved"`
}

// clusterSyncAck prices `sesd -replicate-ack 1` against async
// replication on the same 3-node cluster: the throughput cost of
// withholding each response until a follower confirms, and the
// distribution of the ack waits themselves.
type clusterSyncAck struct {
	Sessions       int     `json:"sessions"`
	Ops            int     `json:"ops"`
	AsyncOpsPerSec float64 `json:"async_ops_per_sec"`
	SyncOpsPerSec  float64 `json:"sync_ops_per_sec"`
	// CostX is async/sync — how many times slower acknowledged
	// replication is than fire-and-forget on this host.
	CostX        float64 `json:"cost_x"`
	AckWaitP50MS float64 `json:"ack_wait_p50_ms"`
	AckWaitP99MS float64 `json:"ack_wait_p99_ms"`
	AckTimeouts  uint64  `json:"ack_timeouts"`
}

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	HostCPUs   int                      `json:"host_cpus"`
	Quick      bool                     `json:"quick"`
	Seed       uint64                   `json:"seed"`
	Throughput []clusterThroughputPoint `json:"throughput"`
	SyncAck    clusterSyncAck           `json:"sync_ack"`
	Failover   clusterFailover          `json:"failover"`
}

// The CI-enforced cluster contract: the largest node count must beat
// single-node throughput by clusterFloorX when the host has at least
// clusterFloorCores cores. Below that the nodes time-share cores and
// the comparison is not physical.
const (
	clusterFloorCores = 4
	clusterFloorX     = 1.5
)

var clusterNodeCounts = []int{1, 2, 3}

// benchCluster measures (or, with verify, re-checks) the cluster
// throughput curve and the failover timeline.
func benchCluster(ctx context.Context, out io.Writer, seed uint64, jsonPath string, quick, verify bool) error {
	if verify {
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			return fmt.Errorf("cluster verify: %w", err)
		}
		var rep clusterReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("cluster verify: %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "verifying %s (host_cpus %d)\n", jsonPath, rep.HostCPUs)
		return checkCluster(out, &rep)
	}

	rep := clusterReport{HostCPUs: runtime.NumCPU(), Quick: quick, Seed: seed}
	for _, nodes := range clusterNodeCounts {
		if err := ctx.Err(); err != nil {
			return err
		}
		pt, err := clusterThroughput(ctx, nodes, seed, quick)
		if err != nil {
			return err
		}
		rep.Throughput = append(rep.Throughput, pt)
		fmt.Fprintf(out, "nodes=%d: %d sessions × %d batches, %.0f ops/s\n",
			pt.Nodes, pt.Sessions, pt.Ops, pt.OpsPerSec)
	}
	base := rep.Throughput[0].OpsPerSec
	for i := range rep.Throughput {
		rep.Throughput[i].SpeedupX = rep.Throughput[i].OpsPerSec / base
	}

	sa, err := clusterSyncAckBench(ctx, seed, quick)
	if err != nil {
		return err
	}
	rep.SyncAck = *sa
	fmt.Fprintf(out, "sync-ack: async %.0f ops/s, replicate-ack=1 %.0f ops/s (%.2fx cost), ack wait p50 %.2fms p99 %.2fms\n",
		sa.AsyncOpsPerSec, sa.SyncOpsPerSec, sa.CostX, sa.AckWaitP50MS, sa.AckWaitP99MS)

	fo, err := clusterKillFailover(ctx, seed, quick, out)
	if err != nil {
		return err
	}
	rep.Failover = *fo

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return checkCluster(out, &rep)
}

// checkCluster validates a cluster artifact: schema always, the
// failover invariants (promotion completed, acknowledged state
// preserved) always — they do not depend on core count — and the
// multi-node throughput floor when measured on a big-enough host.
func checkCluster(out io.Writer, rep *clusterReport) error {
	if rep.HostCPUs <= 0 {
		return fmt.Errorf("cluster artifact: host_cpus %d, want > 0", rep.HostCPUs)
	}
	if len(rep.Throughput) != len(clusterNodeCounts) {
		return fmt.Errorf("cluster artifact: %d throughput points, want %d",
			len(rep.Throughput), len(clusterNodeCounts))
	}
	for i, pt := range rep.Throughput {
		if pt.Nodes != clusterNodeCounts[i] {
			return fmt.Errorf("cluster artifact: point %d has nodes=%d, want %d", i, pt.Nodes, clusterNodeCounts[i])
		}
		if pt.OpsPerSec <= 0 {
			return fmt.Errorf("cluster artifact: nodes=%d has non-positive throughput", pt.Nodes)
		}
	}

	tab := &tablefmt.Table{
		Title:  "Cluster throughput (replicated durable nodes)",
		Header: []string{"nodes", "sessions", "ops/s", "x 1-node"},
	}
	for _, pt := range rep.Throughput {
		tab.AddRow(fmt.Sprint(pt.Nodes), fmt.Sprint(pt.Sessions),
			fmt.Sprintf("%.0f", pt.OpsPerSec), fmt.Sprintf("%.2f", pt.SpeedupX))
	}
	if err := tab.Render(out); err != nil {
		return err
	}
	sa := rep.SyncAck
	fmt.Fprintf(out, "\nsync-ack: async %.0f ops/s, replicate-ack=1 %.0f ops/s (%.2fx cost), ack wait p50 %.2fms p99 %.2fms, %d timeouts\n",
		sa.AsyncOpsPerSec, sa.SyncOpsPerSec, sa.CostX, sa.AckWaitP50MS, sa.AckWaitP99MS, sa.AckTimeouts)
	if sa.SyncOpsPerSec <= 0 || sa.AsyncOpsPerSec <= 0 {
		return fmt.Errorf("cluster artifact: sync-ack section has non-positive throughput (%+v)", sa)
	}
	if sa.AckTimeouts > 0 {
		return fmt.Errorf("cluster artifact: %d synchronous-ack waits timed out on a healthy cluster", sa.AckTimeouts)
	}

	fo := rep.Failover
	fmt.Fprintf(out, "\nfailover: down %.1fms, promoted %.1fms, first write %.1fms after kill -9 (%d sessions adopted)\n",
		fo.KillToDownMS, fo.KillToPromotedMS, fo.KillToWriteMS, fo.AdoptedSessions)

	if !fo.AckedPreserved {
		return fmt.Errorf("cluster artifact: acknowledged state was NOT preserved across failover")
	}
	if fo.AdoptedSessions <= 0 || fo.KillToPromotedMS <= 0 {
		return fmt.Errorf("cluster artifact: failover never completed (adopted %d, promoted %.1fms)",
			fo.AdoptedSessions, fo.KillToPromotedMS)
	}

	last := rep.Throughput[len(rep.Throughput)-1]
	if rep.HostCPUs < clusterFloorCores {
		fmt.Fprintf(out, "cluster floor (%d-node >= %.1fx 1-node) not enforced: measured on a %d-CPU host\n",
			last.Nodes, clusterFloorX, rep.HostCPUs)
		return nil
	}
	if last.SpeedupX < clusterFloorX {
		return fmt.Errorf("cluster throughput at %d nodes is %.2fx single-node, below the %.1fx floor",
			last.Nodes, last.SpeedupX, clusterFloorX)
	}
	fmt.Fprintf(out, "cluster floor ok: %d-node is %.2fx 1-node (floor %.1fx)\n",
		last.Nodes, last.SpeedupX, clusterFloorX)
	return nil
}

// benchSwap serves an atomically-swappable handler (503 until set),
// so every node's URL exists before any node boots.
type benchSwap struct{ h atomic.Value }

func (b *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := b.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// benchNode is one in-process cluster member: a durable store with
// its own group-commit SyncAlways WAL, a single-worker resolve
// pipeline (its serving capacity), and the replication layer, served
// over an httptest server.
type benchNode struct {
	id     string
	dir    string
	store  *ses.DurableStore
	pipe   *ses.Pipeline
	node   *cluster.Node
	server *httptest.Server
}

// bootBenchCluster brings up n replicated durable nodes full-mesh
// over httptest servers. The returned close func tears everything
// down in stream-safe order (nodes, then servers, then stores) and is
// safe to run after a member was killed mid-bench.
func bootBenchCluster(n int, tag string, tweaks ...func(*cluster.NodeOptions)) ([]*benchNode, map[string]string, func(), error) {
	nodes := make([]*benchNode, n)
	urls := make(map[string]string, n)
	swaps := make([]*benchSwap, n)
	for i := range nodes {
		id := fmt.Sprintf("b%d", i+1)
		swaps[i] = &benchSwap{}
		srv := httptest.NewServer(swaps[i])
		nodes[i] = &benchNode{id: id, server: srv}
		urls[id] = srv.URL
	}
	closeAll := func() {
		for _, bn := range nodes {
			if bn.node != nil {
				bn.node.Close()
			}
		}
		for _, bn := range nodes {
			bn.server.CloseClientConnections()
			bn.server.Close()
		}
		for _, bn := range nodes {
			if bn.pipe != nil {
				bn.pipe.Close()
			}
			if bn.store != nil {
				bn.store.Close()
			}
			if bn.dir != "" {
				os.RemoveAll(bn.dir)
			}
		}
	}
	for i, bn := range nodes {
		dir, err := os.MkdirTemp("", "sesbench-cluster-"+tag+"-")
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		bn.dir = dir
		d, err := ses.OpenStore(ses.WithDurability(dir), ses.WithWorkers(1),
			ses.WithSyncPolicy(ses.SyncAlways),
			ses.WithGroupCommit(ses.GroupCommit{Enabled: true}))
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		bn.store = d
		bn.pipe = ses.NewPipeline(d, ses.WithResolveWorkers(1))
		opts := cluster.NodeOptions{
			ID:      bn.id,
			Peers:   urls,
			Session: session.Options{Workers: 1},
			Shipper: cluster.ShipperOptions{Poll: 2 * time.Millisecond, Heartbeat: 50 * time.Millisecond},
		}
		for _, tw := range tweaks {
			tw(&opts)
		}
		node, err := cluster.NewNode(d, opts)
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		bn.node = node
		swaps[i].h.Store(node.Handler())
		node.Start()
	}
	return nodes, urls, closeAll, nil
}

// clusterThroughput drives batch commits across an n-node cluster:
// sessions are placed by the ring and every driver commits through
// its session's primary resolve pipeline while replication ships
// behind it; the aggregate commit rate is the point. Each node
// serves through ONE pipeline worker — its fixed capacity, as a sesd
// deployment caps a machine with -resolve-workers — so node count is
// the scaled resource, exactly as adding machines is in production.
func clusterThroughput(ctx context.Context, n int, seed uint64, quick bool) (clusterThroughputPoint, error) {
	sessions, ops := 12, 40
	if quick {
		sessions, ops = 6, 12
	}
	nodes, _, closeAll, err := bootBenchCluster(n, fmt.Sprintf("tp%d", n))
	if err != nil {
		return clusterThroughputPoint{}, err
	}
	defer closeAll()
	byID := make(map[string]*benchNode, n)
	for _, bn := range nodes {
		byID[bn.id] = bn
	}
	ring := nodes[0].node.Ring()

	names := make([]string, sessions)
	primaries := make([]*benchNode, sessions)
	for i := range names {
		names[i] = fmt.Sprintf("tp-%d", i)
		primaries[i] = byID[ring.Primary(names[i])]
		inst := sestest.Random(sestest.Config{Users: 120, Events: 12, Intervals: 4, Competing: 2, Seed: seed + uint64(i)})
		if err := primaries[i].store.Create(names[i], inst, 4); err != nil {
			return clusterThroughputPoint{}, err
		}
		// Warm-up solve so drivers measure incremental commits.
		if _, err := primaries[i].store.Resolve(ctx, names[i]); err != nil {
			return clusterThroughputPoint{}, err
		}
	}
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				mut := ses.UpdateInterestOp(j%120, j%12, 0.1+0.8*float64(j%9)/9)
				if _, err := primaries[i].pipe.ApplyBatch(ctx, names[i], []ses.Mutation{mut}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return clusterThroughputPoint{}, err
		}
	}
	return clusterThroughputPoint{
		Nodes: n, Sessions: sessions, Ops: ops,
		OpsPerSec: float64(sessions*ops) / wall,
	}, nil
}

// clusterSyncAckBench prices synchronous replication acks: the same
// 3-node cluster runs one async phase (fire-and-forget, the default)
// and one sync phase where every batch additionally blocks on
// AwaitAck (`-replicate-ack 1`) — the per-op ack wait is the price of
// closing the acked-write loss window.
func clusterSyncAckBench(ctx context.Context, seed uint64, quick bool) (*clusterSyncAck, error) {
	sessions, ops := 8, 30
	if quick {
		sessions, ops = 4, 10
	}
	nodes, _, closeAll, err := bootBenchCluster(3, "ack", func(o *cluster.NodeOptions) {
		o.ReplicateAck = 1
		o.AckWait = 10 * time.Second
	})
	if err != nil {
		return nil, err
	}
	defer closeAll()
	byID := make(map[string]*benchNode, len(nodes))
	for _, bn := range nodes {
		byID[bn.id] = bn
	}
	ring := nodes[0].node.Ring()
	names := make([]string, sessions)
	primaries := make([]*benchNode, sessions)
	for i := range names {
		names[i] = fmt.Sprintf("ack-%d", i)
		primaries[i] = byID[ring.Primary(names[i])]
		inst := sestest.Random(sestest.Config{Users: 120, Events: 12, Intervals: 4, Competing: 2, Seed: seed + uint64(i)})
		if err := primaries[i].store.Create(names[i], inst, 4); err != nil {
			return nil, err
		}
		if _, err := primaries[i].store.Resolve(ctx, names[i]); err != nil {
			return nil, err
		}
	}

	drive := func(await bool) (float64, []float64, error) {
		errs := make([]error, sessions)
		waits := make([][]float64, sessions)
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < ops; j++ {
					mut := ses.UpdateInterestOp(j%120, j%12, 0.1+0.8*float64(j%9)/9)
					if _, err := primaries[i].pipe.ApplyBatch(ctx, names[i], []ses.Mutation{mut}); err != nil {
						errs[i] = err
						return
					}
					if !await {
						continue
					}
					w0 := time.Now()
					if err := primaries[i].node.AwaitAck(ctx, names[i]); err != nil {
						errs[i] = err
						return
					}
					waits[i] = append(waits[i], msSince(w0))
				}
			}(i)
		}
		wg.Wait()
		wall := time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, nil, err
			}
		}
		var all []float64
		for _, w := range waits {
			all = append(all, w...)
		}
		return float64(sessions*ops) / wall, all, nil
	}

	sa := &clusterSyncAck{Sessions: sessions, Ops: ops}
	if sa.AsyncOpsPerSec, _, err = drive(false); err != nil {
		return nil, fmt.Errorf("sync-ack bench (async phase): %w", err)
	}
	syncRate, waits, err := drive(true)
	if err != nil {
		return nil, fmt.Errorf("sync-ack bench (sync phase): %w", err)
	}
	sa.SyncOpsPerSec = syncRate
	sa.CostX = sa.AsyncOpsPerSec / sa.SyncOpsPerSec
	sort.Float64s(waits)
	if len(waits) > 0 {
		sa.AckWaitP50MS = stats.PercentileSorted(waits, 50)
		sa.AckWaitP99MS = stats.PercentileSorted(waits, 99)
	}
	for _, bn := range nodes {
		sa.AckTimeouts += bn.node.Metrics().AckTimeouts
	}
	return sa, nil
}

// clusterKillFailover boots three nodes plus a Router, loads one
// node with acknowledged batches, lets replication drain, kill -9s
// that node (server vanishes, store abandoned without its final
// checkpoint), and times the router's detection, promotion, and the
// first write the survivor takes for an adopted session — verifying
// the acknowledged counters came through the promotion exactly.
func clusterKillFailover(ctx context.Context, seed uint64, quick bool, out io.Writer) (*clusterFailover, error) {
	sessions, ops := 6, 12
	if quick {
		sessions, ops = 3, 6
	}
	nodes, urls, closeAll, err := bootBenchCluster(3, "fo")
	if err != nil {
		return nil, err
	}
	defer closeAll()
	victim := nodes[0]
	byID := make(map[string]*benchNode, len(nodes))
	for _, bn := range nodes {
		byID[bn.id] = bn
	}

	// Acknowledged workload on the victim only: its sessions are what
	// the failover must preserve.
	type ackedState struct {
		name                         string
		mutations, batches, resolves uint64
	}
	acked := make([]ackedState, 0, sessions)
	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("fo-%d", i)
		inst := sestest.Random(sestest.Config{Users: 100, Events: 10, Intervals: 4, Competing: 2, Seed: seed + uint64(i)})
		if err := victim.store.Create(name, inst, 4); err != nil {
			return nil, err
		}
		for j := 0; j < ops; j++ {
			mut := ses.UpdateInterestOp(j%100, j%10, 0.5)
			if _, err := victim.store.ApplyBatch(ctx, name, []ses.Mutation{mut}); err != nil {
				return nil, err
			}
		}
		m, err := victim.store.Meta(name)
		if err != nil {
			return nil, err
		}
		acked = append(acked, ackedState{name, m.Mutations, m.Batches, m.Resolves})
	}

	// Drain: every survivor's replica must hold the full acknowledged
	// state before the kill. This fig times failover mechanics;
	// replication lag under loss is the crash matrix's subject.
	deadline := time.Now().Add(60 * time.Second)
	for _, bn := range nodes[1:] {
		for _, a := range acked {
			for {
				if rep, _, ok := bn.node.Replica(a.name); ok {
					if m, err := rep.Meta(a.name); err == nil && m.Mutations == a.mutations && m.Batches == a.batches {
						break
					}
				}
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("replication never drained %s to %s", a.name, bn.id)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers:          urls,
		HealthInterval: 10 * time.Millisecond,
		DownAfter:      3,
	})
	if err != nil {
		return nil, err
	}
	rt.Start()
	defer rt.Close()
	for {
		st := rt.Status()
		healthy := 0
		for _, state := range st.Nodes {
			if state == "up" {
				healthy++
			}
		}
		if healthy == len(nodes) {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("router never saw the cluster healthy: %v", st.Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// kill -9: the victim's endpoint vanishes mid-flight and its store
	// is simply abandoned — no graceful close, no final checkpoint.
	kill := time.Now()
	victim.node.Close()
	victim.server.CloseClientConnections()
	victim.server.Close()

	fo := &clusterFailover{}
	var survivorID string
	for {
		st := rt.Status()
		if fo.KillToDownMS == 0 && st.Nodes[victim.id] == "down" {
			fo.KillToDownMS = msSince(kill)
		}
		if s, ok := st.Promoted[victim.id]; ok {
			survivorID = s
			fo.KillToPromotedMS = msSince(kill)
			if fo.KillToDownMS == 0 { // down and promoted within one poll
				fo.KillToDownMS = fo.KillToPromotedMS
			}
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("router never promoted a survivor for %s", victim.id)
		}
		time.Sleep(2 * time.Millisecond)
	}
	survivor := byID[survivorID]
	if survivor == nil {
		return nil, fmt.Errorf("router promoted unknown node %q", survivorID)
	}

	// The acknowledged counters must come through the promotion
	// exactly: nothing lost, nothing phantom.
	fo.AckedPreserved = true
	for _, a := range acked {
		m, err := survivor.store.Meta(a.name)
		if err != nil {
			fmt.Fprintf(out, "failover: %s missing on %s: %v\n", a.name, survivorID, err)
			fo.AckedPreserved = false
			continue
		}
		if m.Mutations != a.mutations || m.Batches != a.batches || m.Resolves != a.resolves {
			fmt.Fprintf(out, "failover: %s adopted with %d/%d/%d, acknowledged %d/%d/%d\n",
				a.name, m.Mutations, m.Batches, m.Resolves, a.mutations, a.batches, a.resolves)
			fo.AckedPreserved = false
		}
	}
	fo.AdoptedSessions = len(acked)

	// First post-failover write for an adopted session: the survivor
	// is primary now and must take it durably.
	if _, err := survivor.store.ApplyBatch(ctx, acked[0].name, []ses.Mutation{ses.UpdateInterestOp(0, 0, 0.9)}); err != nil {
		return nil, fmt.Errorf("post-failover write: %w", err)
	}
	fo.KillToWriteMS = msSince(kill)
	return fo, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}
