package main

// -fig obs prices the observability layer against itself: the same
// pipelined batch-commit workload runs once with observability off
// and once with it fully on (root span per request, child spans
// through pipeline/resolve/scoring, hub sink installed), plus two
// microbenchmarks of the obs primitives — span recording into the
// bounded trace ring, and event fan-out through the watch hub with
// live subscribers. The contract the CI re-checks: full tracing costs
// at most obsOverheadPct percent of throughput (enforced only on
// hosts with at least obsFloorCores cores, where the measurement is
// not dominated by scheduler noise).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"ses"
	"ses/internal/obs"
	"ses/internal/sestest"
)

// obsThroughput compares the serving throughput with observability
// off and on.
type obsThroughput struct {
	Sessions int `json:"sessions"`
	Ops      int `json:"ops"`
	// OffOpsPerSec/OnOpsPerSec are pipelined batch commits per second
	// without/with tracing + hub sink.
	OffOpsPerSec float64 `json:"off_ops_per_sec"`
	OnOpsPerSec  float64 `json:"on_ops_per_sec"`
	// OverheadPct is (off-on)/off*100 — the tracing tax (negative
	// values mean noise, not a speedup).
	OverheadPct float64 `json:"overhead_pct"`
}

// obsTraceRing is the span-recording microbenchmark.
type obsTraceRing struct {
	Spans       int     `json:"spans"`
	NsPerSpan   float64 `json:"ns_per_span"`
	SpansPerSec float64 `json:"spans_per_sec"`
	// RingLen is the traces retained afterwards — must equal the ring
	// bound, proving eviction kept memory bounded.
	RingLen int `json:"ring_len"`
}

// obsFanout is the hub fan-out microbenchmark.
type obsFanout struct {
	Subscribers  int     `json:"subscribers"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Delivered counts subscriber-deliveries (events × subscribers
	// when nobody fell behind).
	Delivered uint64 `json:"delivered"`
	// Evicted counts slow subscribers the hub dropped in the eviction
	// phase of the bench (exactly one by construction).
	Evicted uint64 `json:"evicted"`
}

// obsReport is the BENCH_obs.json document.
type obsReport struct {
	HostCPUs   int           `json:"host_cpus"`
	Quick      bool          `json:"quick"`
	Seed       uint64        `json:"seed"`
	Throughput obsThroughput `json:"throughput"`
	TraceRing  obsTraceRing  `json:"trace_ring"`
	Fanout     obsFanout     `json:"fanout"`
}

// The CI-enforced observability contract: tracing everything costs at
// most obsOverheadPct of throughput, enforced when the host has at
// least obsFloorCores cores (below that the two phases time-share
// cores with the pipeline workers and the comparison drowns in
// scheduler noise).
const (
	obsFloorCores  = 4
	obsOverheadPct = 5.0
)

// benchObs measures (or, with verify, re-checks) the observability
// figure.
func benchObs(ctx context.Context, out io.Writer, seed uint64, jsonPath string, quick, verify bool) error {
	if verify {
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			return fmt.Errorf("obs verify: %w", err)
		}
		var rep obsReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("obs verify: %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "verifying %s (host_cpus %d)\n", jsonPath, rep.HostCPUs)
		return checkObs(out, &rep)
	}

	rep := obsReport{HostCPUs: runtime.NumCPU(), Quick: quick, Seed: seed}
	tp, err := obsThroughputBench(ctx, seed, quick)
	if err != nil {
		return err
	}
	rep.Throughput = *tp
	fmt.Fprintf(out, "throughput: off %.0f ops/s, on %.0f ops/s (%.2f%% overhead)\n",
		tp.OffOpsPerSec, tp.OnOpsPerSec, tp.OverheadPct)

	rep.TraceRing = obsTraceRingBench(quick)
	fmt.Fprintf(out, "trace ring: %d spans, %.0f ns/span (%.0f spans/s)\n",
		rep.TraceRing.Spans, rep.TraceRing.NsPerSpan, rep.TraceRing.SpansPerSec)

	rep.Fanout = obsFanoutBench(quick)
	fmt.Fprintf(out, "fan-out: %d subscribers × %d events, %.0f events/s, %d evicted\n",
		rep.Fanout.Subscribers, rep.Fanout.Events, rep.Fanout.EventsPerSec, rep.Fanout.Evicted)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return checkObs(out, &rep)
}

// checkObs validates an obs artifact: schema always, the overhead
// floor when measured on a big-enough host.
func checkObs(out io.Writer, rep *obsReport) error {
	if rep.HostCPUs <= 0 {
		return fmt.Errorf("obs artifact: host_cpus %d, want > 0", rep.HostCPUs)
	}
	tp := rep.Throughput
	if tp.OffOpsPerSec <= 0 || tp.OnOpsPerSec <= 0 {
		return fmt.Errorf("obs artifact: non-positive throughput (%+v)", tp)
	}
	if rep.TraceRing.SpansPerSec <= 0 || rep.TraceRing.RingLen <= 0 {
		return fmt.Errorf("obs artifact: trace-ring section never measured (%+v)", rep.TraceRing)
	}
	if rep.Fanout.EventsPerSec <= 0 || rep.Fanout.Delivered == 0 {
		return fmt.Errorf("obs artifact: fan-out section never measured (%+v)", rep.Fanout)
	}
	if rep.Fanout.Evicted == 0 {
		return fmt.Errorf("obs artifact: the slow-subscriber eviction phase never evicted")
	}
	fmt.Fprintf(out, "obs: off %.0f ops/s, on %.0f ops/s (%.2f%% overhead); ring %.0f spans/s; hub %.0f events/s\n",
		tp.OffOpsPerSec, tp.OnOpsPerSec, tp.OverheadPct,
		rep.TraceRing.SpansPerSec, rep.Fanout.EventsPerSec)
	if rep.HostCPUs < obsFloorCores {
		fmt.Fprintf(out, "obs floor (<= %.1f%% overhead) not enforced: measured on a %d-CPU host\n",
			obsOverheadPct, rep.HostCPUs)
		return nil
	}
	if rep.Quick {
		fmt.Fprintf(out, "obs floor (<= %.1f%% overhead) not enforced: quick run\n", obsOverheadPct)
		return nil
	}
	if tp.OverheadPct > obsOverheadPct {
		return fmt.Errorf("observability overhead %.2f%% exceeds the %.1f%% floor", tp.OverheadPct, obsOverheadPct)
	}
	fmt.Fprintf(out, "obs floor ok: %.2f%% overhead (floor %.1f%%)\n", tp.OverheadPct, obsOverheadPct)
	return nil
}

// obsThroughputBench drives the same pipelined batch workload twice —
// once on a bare store, once with full observability (root span per
// request, sink installed) — and prices the difference. Phases
// alternate off/on over several rounds and the best round of each
// wins, so one scheduling hiccup cannot charge either side.
func obsThroughputBench(ctx context.Context, seed uint64, quick bool) (*obsThroughput, error) {
	sessions, ops, rounds := 8, 120, 3
	if quick {
		sessions, ops, rounds = 4, 30, 2
	}

	run := func(o *ses.Observability) (float64, error) {
		opts := []ses.Option{ses.WithWorkers(1), ses.WithObservability(o)}
		st := ses.NewStore(opts...)
		pipe := ses.NewPipeline(st, ses.WithResolveWorkers(runtime.NumCPU()))
		defer pipe.Close()
		var tracer *obs.Tracer
		if o != nil {
			tracer = o.Tracer
		}
		names := make([]string, sessions)
		for i := range names {
			names[i] = fmt.Sprintf("obs-%d", i)
			inst := sestest.Random(sestest.Config{Users: 120, Events: 12, Intervals: 4, Competing: 2, Seed: seed + uint64(i)})
			if err := st.Create(names[i], inst, 4); err != nil {
				return 0, err
			}
			if _, err := st.Resolve(ctx, names[i]); err != nil {
				return 0, err
			}
		}
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < ops; j++ {
					// With observability on, every op runs exactly like a
					// traced sesd request: root span, child spans through the
					// pipeline and the resolve stages, ring commit at End.
					opCtx, sp := tracer.StartRoot(ctx, obs.SpanHandler, "")
					mut := ses.UpdateInterestOp(j%120, j%12, 0.1+0.8*float64(j%9)/9)
					_, err := pipe.ApplyBatch(opCtx, names[i], []ses.Mutation{mut})
					sp.End()
					if err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		wall := time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(sessions*ops) / wall, nil
	}

	tp := &obsThroughput{Sessions: sessions, Ops: ops}
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		off, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("obs-off phase: %w", err)
		}
		on, err := run(ses.NewObservability(ses.ObservabilityOptions{}))
		if err != nil {
			return nil, fmt.Errorf("obs-on phase: %w", err)
		}
		tp.OffOpsPerSec = max(tp.OffOpsPerSec, off)
		tp.OnOpsPerSec = max(tp.OnOpsPerSec, on)
	}
	tp.OverheadPct = (tp.OffOpsPerSec - tp.OnOpsPerSec) / tp.OffOpsPerSec * 100
	return tp, nil
}

// obsTraceRingBench prices raw span recording: root + three children
// per trace, committed into a 512-trace ring under sustained
// eviction.
func obsTraceRingBench(quick bool) obsTraceRing {
	traces := 50_000
	if quick {
		traces = 5_000
	}
	tracer := obs.NewTracer(obs.TracerOptions{})
	t0 := time.Now()
	for i := 0; i < traces; i++ {
		ctx, root := tracer.StartRoot(context.Background(), obs.SpanHandler, "")
		for _, name := range [...]string{obs.SpanPipeline, obs.SpanResolve, obs.SpanScoring} {
			_, sp := obs.StartSpan(ctx, name)
			sp.SetAttr("i", i)
			sp.End()
		}
		root.End()
	}
	wall := time.Since(t0)
	spans := traces * 4
	return obsTraceRing{
		Spans:       spans,
		NsPerSpan:   float64(wall.Nanoseconds()) / float64(spans),
		SpansPerSec: float64(spans) / wall.Seconds(),
		RingLen:     tracer.Len(),
	}
}

// obsFanoutBench prices hub publishing under live subscribers (all
// draining), then verifies the eviction path with one deliberately
// stuck subscriber.
func obsFanoutBench(quick bool) obsFanout {
	subs, events := 16, 20_000
	if quick {
		subs, events = 8, 2_000
	}
	hub := obs.NewHub()
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub := hub.Subscribe("bench", 1024)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.Events() {
			}
		}()
	}
	type payload struct {
		Seq       int     `json:"seq"`
		Utility   float64 `json:"utility"`
		Scheduled int     `json:"scheduled"`
	}
	var delivered uint64
	t0 := time.Now()
	for i := 0; i < events; i++ {
		delivered += uint64(hub.Publish("bench", "progress", payload{Seq: i, Utility: float64(i), Scheduled: i % 7}))
	}
	wall := time.Since(t0)
	hub.CloseSession("bench")
	wg.Wait()

	// Eviction phase: a 1-slot subscriber that never reads must be
	// dropped (channel closed) without ever blocking the publisher.
	stuck := hub.Subscribe("stuck", 1)
	hub.Publish("stuck", "progress", payload{})
	hub.Publish("stuck", "progress", payload{})
	<-stuck.Events() // buffered first event
	if _, ok := <-stuck.Events(); ok {
		// Channel must be closed after eviction; drain defensively.
		for range stuck.Events() {
		}
	}
	st := hub.Stats()
	return obsFanout{
		Subscribers:  subs,
		Events:       events,
		EventsPerSec: float64(events) / wall.Seconds(),
		Delivered:    delivered,
		Evicted:      st.Evicted,
	}
}
