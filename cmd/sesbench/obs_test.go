package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunObsFig(t *testing.T) {
	if testing.Short() {
		t.Skip("obs measurement runs the pipelined workload twice per round")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_obs.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "obs", "-quick", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("obs fig: %v\n%s", err, out.String())
	}
	var rep obsReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HostCPUs <= 0 || !rep.Quick {
		t.Fatalf("obs report implausible: %+v", rep)
	}
	tp := rep.Throughput
	if tp.OffOpsPerSec <= 0 || tp.OnOpsPerSec <= 0 || tp.Sessions != 4 || tp.Ops != 30 {
		t.Errorf("throughput section implausible: %+v", tp)
	}
	tr := rep.TraceRing
	if tr.Spans != 20_000 || tr.NsPerSpan <= 0 || tr.SpansPerSec <= 0 || tr.RingLen <= 0 || tr.RingLen > 512 {
		t.Errorf("trace-ring section implausible: %+v", tr)
	}
	fo := rep.Fanout
	if fo.Subscribers != 8 || fo.Events != 2_000 || fo.EventsPerSec <= 0 || fo.Delivered == 0 || fo.Evicted == 0 {
		t.Errorf("fan-out section implausible: %+v", fo)
	}
	if !strings.Contains(out.String(), "throughput: off") || !strings.Contains(out.String(), "trace ring:") {
		t.Errorf("output missing measurement lines:\n%s", out.String())
	}

	// -verify must accept the artifact it just wrote...
	var vout bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "obs", "-verify", "-json", jsonPath}, &vout); err != nil {
		t.Fatalf("verify of fresh artifact: %v\n%s", err, vout.String())
	}

	// ...and reject broken ones. The overhead floor applies only to
	// non-quick artifacts measured on >= obsFloorCores CPUs: the same
	// 12% curve passes stamped 1-CPU ("floor ignored") or quick, and
	// fails stamped as a deliberate 8-CPU measurement.
	goodTP := `"throughput":{"sessions":4,"ops":30,"off_ops_per_sec":100,"on_ops_per_sec":88,"overhead_pct":12}`
	goodTR := `"trace_ring":{"spans":100,"ns_per_span":500,"spans_per_sec":2000000,"ring_len":512}`
	goodFO := `"fanout":{"subscribers":8,"events":100,"events_per_sec":1000,"delivered":800,"evicted":1}`
	for name, doc := range map[string]string{
		"invalid json":  `{`,
		"bad cpus":      `{"host_cpus":0,` + goodTP + `,` + goodTR + `,` + goodFO + `}`,
		"no throughput": `{"host_cpus":1,` + goodTR + `,` + goodFO + `}`,
		"no trace ring": `{"host_cpus":1,` + goodTP + `,` + goodFO + `}`,
		"no fan-out":    `{"host_cpus":1,` + goodTP + `,` + goodTR + `}`,
		"never evicted": `{"host_cpus":1,` + goodTP + `,` + goodTR + `,"fanout":{"events_per_sec":1000,"delivered":800,"evicted":0}}`,
		"floor breach":  `{"host_cpus":8,` + goodTP + `,` + goodTR + `,` + goodFO + `}`,
		"floor ignored": `{"host_cpus":1,` + goodTP + `,` + goodTR + `,` + goodFO + `}`,
		"quick skips":   `{"host_cpus":8,"quick":true,` + goodTP + `,` + goodTR + `,` + goodFO + `}`,
	} {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-fig", "obs", "-verify", "-json", bad}, &bytes.Buffer{})
		switch name {
		case "floor ignored", "quick skips":
			if err != nil {
				t.Errorf("%s: %v, want accepted", name, err)
			}
		default:
			if err == nil {
				t.Errorf("%s: accepted, want rejected", name)
			}
		}
	}
}
