package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"ses"
	"ses/internal/sestest"
	"ses/internal/tablefmt"
	"ses/internal/wal"
)

// scalingPoint is one GOMAXPROCS setting's measured throughput for
// the three layers the multi-core work targets: the parallel-scoring
// solve (engine), the pipeline of independent session resolves
// (store), and concurrent group-commit appenders (wal).
type scalingPoint struct {
	GoMaxProcs          int     `json:"gomaxprocs"`
	EngineSolvesPerSec  float64 `json:"engine_solves_per_sec"`
	StoreResolvesPerSec float64 `json:"store_resolves_per_sec"`
	WALAppendsPerSec    float64 `json:"wal_appends_per_sec"`
}

// scalingReport is the BENCH_scaling.json document. HostCPUs records
// where the curve was measured: on a single-core host the points
// cannot show real speedup, so the scaling floor is only enforced
// when the artifact was produced with at least storeFloorCores cores.
type scalingReport struct {
	HostCPUs int            `json:"host_cpus"`
	Quick    bool           `json:"quick"`
	Seed     uint64         `json:"seed"`
	Points   []scalingPoint `json:"points"`
}

// The CI-enforced curve contract: store resolve throughput at
// storeFloorCores GOMAXPROCS must reach storeFloorX times the 1-core
// figure (only enforced when the host really has that many cores).
const (
	storeFloorCores = 4
	storeFloorX     = 2.0
)

var scalingProcs = []int{1, 2, 4, 8}

// benchScaling measures (or, with verify, re-checks a committed)
// engine/store/wal scaling curve over GOMAXPROCS 1/2/4/8 and writes
// it to jsonPath. quick shrinks the workload for CI smokes.
func benchScaling(ctx context.Context, out io.Writer, seed uint64, jsonPath string, quick, verify bool) error {
	if verify {
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			return fmt.Errorf("scaling verify: %w", err)
		}
		var rep scalingReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("scaling verify: %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "verifying %s (host_cpus %d)\n", jsonPath, rep.HostCPUs)
		return checkScaling(out, &rep)
	}

	rep := scalingReport{HostCPUs: runtime.NumCPU(), Quick: quick, Seed: seed}
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)
	for _, procs := range scalingProcs {
		if err := ctx.Err(); err != nil {
			return err
		}
		runtime.GOMAXPROCS(procs)
		pt := scalingPoint{GoMaxProcs: procs}
		var err error
		if pt.EngineSolvesPerSec, err = scaleEngine(ctx, seed, quick); err != nil {
			return err
		}
		if pt.StoreResolvesPerSec, err = scaleStore(ctx, seed, quick); err != nil {
			return err
		}
		if pt.WALAppendsPerSec, err = scaleWAL(quick); err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(out, "GOMAXPROCS=%d: engine %.1f solves/s, store %.0f resolves/s, wal %.0f appends/s\n",
			procs, pt.EngineSolvesPerSec, pt.StoreResolvesPerSec, pt.WALAppendsPerSec)
	}
	runtime.GOMAXPROCS(restore)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return checkScaling(out, &rep)
}

// checkScaling validates a curve artifact: the schema (one point per
// GOMAXPROCS in scalingProcs, positive figures) always, and the
// store-scaling floor when the artifact was measured on a host with
// enough cores for the floor to be physical.
func checkScaling(out io.Writer, rep *scalingReport) error {
	if rep.HostCPUs <= 0 {
		return fmt.Errorf("scaling artifact: host_cpus %d, want > 0", rep.HostCPUs)
	}
	if len(rep.Points) != len(scalingProcs) {
		return fmt.Errorf("scaling artifact: %d points, want %d (GOMAXPROCS %v)", len(rep.Points), len(scalingProcs), scalingProcs)
	}
	byProcs := map[int]scalingPoint{}
	for i, pt := range rep.Points {
		if pt.GoMaxProcs != scalingProcs[i] {
			return fmt.Errorf("scaling artifact: point %d has gomaxprocs %d, want %d", i, pt.GoMaxProcs, scalingProcs[i])
		}
		if pt.EngineSolvesPerSec <= 0 || pt.StoreResolvesPerSec <= 0 || pt.WALAppendsPerSec <= 0 {
			return fmt.Errorf("scaling artifact: point GOMAXPROCS=%d has a non-positive figure: %+v", pt.GoMaxProcs, pt)
		}
		byProcs[pt.GoMaxProcs] = pt
	}

	tab := &tablefmt.Table{
		Title:  "Scaling curve (throughput vs GOMAXPROCS)",
		Header: []string{"GOMAXPROCS", "engine solves/s", "store resolves/s", "wal appends/s", "store ×1-core"},
	}
	base := rep.Points[0]
	for _, pt := range rep.Points {
		tab.AddRow(fmt.Sprint(pt.GoMaxProcs),
			fmt.Sprintf("%.1f", pt.EngineSolvesPerSec),
			fmt.Sprintf("%.0f", pt.StoreResolvesPerSec),
			fmt.Sprintf("%.0f", pt.WALAppendsPerSec),
			fmt.Sprintf("%.2f×", pt.StoreResolvesPerSec/base.StoreResolvesPerSec))
	}
	if err := tab.Render(out); err != nil {
		return err
	}

	if rep.HostCPUs < storeFloorCores {
		fmt.Fprintf(out, "\nstore floor (%d-core ≥ %.1f× 1-core) not enforced: measured on a %d-CPU host\n",
			storeFloorCores, storeFloorX, rep.HostCPUs)
		return nil
	}
	speedup := byProcs[storeFloorCores].StoreResolvesPerSec / base.StoreResolvesPerSec
	if speedup < storeFloorX {
		return fmt.Errorf("store resolve throughput at GOMAXPROCS=%d is %.2f× the 1-core figure, below the %.1f× floor",
			storeFloorCores, speedup, storeFloorX)
	}
	fmt.Fprintf(out, "\nstore floor ok: %d-core is %.2f× 1-core (floor %.1f×)\n", storeFloorCores, speedup, storeFloorX)
	return nil
}

// scaleEngine times from-scratch greedy solves whose initial scoring
// fans out over all GOMAXPROCS cores (ses.WithWorkers(0)).
func scaleEngine(ctx context.Context, seed uint64, quick bool) (float64, error) {
	users, reps := 4000, 6
	if quick {
		users, reps = 1000, 3
	}
	inst := sestest.Random(sestest.Config{Users: users, Events: 48, Intervals: 8, Competing: 4, Seed: seed})
	s, err := ses.New("grd", ses.WithWorkers(0))
	if err != nil {
		return 0, err
	}
	// One untimed run warms allocator and caches.
	if _, err := s.Solve(ctx, inst, 10); err != nil {
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := s.Solve(ctx, inst, 10); err != nil {
			return 0, err
		}
	}
	return float64(reps) / time.Since(t0).Seconds(), nil
}

// scaleStore times independent sessions resolving through a Pipeline
// whose worker pool spans all cores: one driver goroutine per session
// commits interest updates (mutation + incremental resolve) back to
// back.
func scaleStore(ctx context.Context, seed uint64, quick bool) (float64, error) {
	sessions, ops := 16, 60
	if quick {
		sessions, ops = 8, 25
	}
	st := ses.NewStore(ses.WithWorkers(1))
	pipe := ses.NewPipeline(st, ses.WithResolveWorkers(0))
	defer pipe.Close()
	for i := 0; i < sessions; i++ {
		inst := sestest.Random(sestest.Config{Users: 200, Events: 16, Intervals: 5, Competing: 3, Seed: seed + uint64(i)})
		name := fmt.Sprintf("scale-%d", i)
		if err := st.Create(name, inst, 6); err != nil {
			return 0, err
		}
		if _, err := st.Resolve(ctx, name); err != nil { // warm-up solve
			return 0, err
		}
	}
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("scale-%d", i)
			for j := 0; j < ops; j++ {
				mut := ses.UpdateInterestOp(j%200, j%16, 0.1+0.8*float64(j%9)/9)
				if _, err := pipe.ApplyBatch(ctx, name, []ses.Mutation{mut}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(sessions*ops) / wall, nil
}

// scaleWAL times concurrent group-commit appenders under SyncAlways.
func scaleWAL(quick bool) (float64, error) {
	appenders, per := 8, 128
	if quick {
		per = 48
	}
	dir, err := os.MkdirTemp("", "sesbench-scalewal-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: ses.SyncAlways, GroupCommit: wal.GroupCommit{Enabled: true}})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	payload := make([]byte, 256)
	errs := make([]error, appenders)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(payload); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(appenders*per) / wall, nil
}
