package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ses"
	"ses/internal/ebsn"
	"ses/internal/tablefmt"
)

// benchResolve measures the session layer's incremental Resolve
// against a from-scratch re-solve after single mutations. For every
// scenario it applies one mutation to a warm ses.Scheduler, resolves
// incrementally, then replays the same state into a fresh Scheduler
// and resolves from scratch; utilities must match exactly and the
// incremental InitialScores count is the headline saving. Results go
// to the terminal and, as JSON, to jsonPath.
func benchResolve(ctx context.Context, out io.Writer, ds *ebsn.Dataset, seed uint64, workers int, jsonPath string) error {
	const k = 50
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: k, Intervals: 3 * k / 2, CandidateEvents: 2 * k, Seed: seed,
	})
	if err != nil {
		return err
	}
	nE, nT := inst.NumEvents(), inst.NumIntervals
	fmt.Fprintf(out, "\n== incremental Resolve vs from-scratch (|E|=%d |T|=%d k=%d) ==\n\n", nE, nT, k)

	sched, err := ses.NewScheduler(inst, k, ses.WithWorkers(workers))
	if err != nil {
		return err
	}

	type run struct {
		InitialScores int     `json:"initial_scores"`
		ScoreUpdates  int     `json:"score_updates"`
		Utility       float64 `json:"utility"`
		Millis        float64 `json:"ms"`
	}
	type scenario struct {
		Name         string `json:"name"`
		Incremental  run    `json:"incremental"`
		Scratch      run    `json:"scratch"`
		UtilityMatch bool   `json:"utility_match"`
		// ScoreRatio is scratch/incremental InitialScores; 0 means the
		// mutation invalidated no initial scores at all.
		ScoreRatio float64 `json:"initial_score_ratio"`
	}
	report := struct {
		Events    int        `json:"events"`
		Intervals int        `json:"intervals"`
		K         int        `json:"k"`
		Users     int        `json:"users"`
		Scenarios []scenario `json:"scenarios"`
	}{Events: nE, Intervals: nT, K: k, Users: inst.NumUsers}

	resolve := func(s *ses.Scheduler) (run, error) {
		start := time.Now()
		d, err := s.Resolve(ctx)
		if err != nil {
			return run{}, err
		}
		return run{
			InitialScores: d.Counters.InitialScores,
			ScoreUpdates:  d.Counters.ScoreUpdates,
			Utility:       d.Utility,
			Millis:        float64(time.Since(start).Microseconds()) / 1000,
		}, nil
	}

	// Warm up the session with the opening solve.
	opening, err := resolve(sched)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "opening solve: Ω = %.1f, %d initial scores\n\n", opening.Utility, opening.InitialScores)

	// Replayed mutation log so the from-scratch comparator sees the
	// exact same constraints.
	var pins [][2]int
	var cancels []int

	wideInterest := func(every int, mu float64) map[int]float64 {
		m := make(map[int]float64)
		for u := 0; u < inst.NumUsers; u += every {
			m[u] = mu
		}
		return m
	}
	scenarios := []struct {
		name   string
		mutate func() error
	}{
		{"update_interest", func() error { return sched.UpdateInterest(1, 2, 0.8) }},
		{"add_event", func() error {
			_, err := sched.AddEvent(ses.Event{Location: 0, Required: 2, Name: "bench-late"}, wideInterest(7, 0.5))
			return err
		}},
		{"add_competing", func() error {
			_, err := sched.AddCompeting(ses.CompetingEvent{Interval: 1, Name: "bench-rival"}, wideInterest(5, 0.6))
			return err
		}},
		{"cancel_event", func() error {
			e := sched.Schedule()[0].Event
			cancels = append(cancels, e)
			return sched.CancelEvent(e)
		}},
		{"pin_event", func() error {
			a := sched.Schedule()[1]
			to := (a.Interval + 1) % nT
			pins = append(pins, [2]int{a.Event, to})
			return sched.Pin(a.Event, to)
		}},
	}

	tab := &tablefmt.Table{
		Title:  "Incremental Resolve vs from-scratch GRD (identical utility required)",
		Header: []string{"mutation", "inc scores", "scratch scores", "ratio", "inc ms", "scratch ms", "Ω match"},
	}
	for _, sc := range scenarios {
		if err := sc.mutate(); err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		inc, err := resolve(sched)
		if err != nil {
			return fmt.Errorf("%s: incremental: %w", sc.name, err)
		}
		// From-scratch comparator: a fresh session over the mutated
		// instance with the same constraint log.
		fresh, err := ses.NewScheduler(sched.Instance(), k, ses.WithWorkers(workers))
		if err != nil {
			return err
		}
		for _, e := range cancels {
			if err := fresh.CancelEvent(e); err != nil {
				return err
			}
		}
		for _, p := range pins {
			if err := fresh.Pin(p[0], p[1]); err != nil {
				return err
			}
		}
		scr, err := resolve(fresh)
		if err != nil {
			return fmt.Errorf("%s: from-scratch: %w", sc.name, err)
		}
		match := inc.Utility == scr.Utility
		if !match {
			return fmt.Errorf("%s: utilities diverged: incremental %v vs from-scratch %v",
				sc.name, inc.Utility, scr.Utility)
		}
		if inc.InitialScores >= scr.InitialScores {
			return fmt.Errorf("%s: incremental InitialScores %d not below from-scratch %d",
				sc.name, inc.InitialScores, scr.InitialScores)
		}
		ratio := 0.0
		ratioStr := "∞"
		if inc.InitialScores > 0 {
			ratio = float64(scr.InitialScores) / float64(inc.InitialScores)
			ratioStr = fmt.Sprintf("%.0f×", ratio)
		}
		report.Scenarios = append(report.Scenarios, scenario{
			Name: sc.name, Incremental: inc, Scratch: scr, UtilityMatch: match, ScoreRatio: ratio,
		})
		tab.AddRow(sc.name,
			fmt.Sprintf("%d", inc.InitialScores),
			fmt.Sprintf("%d", scr.InitialScores),
			ratioStr,
			fmt.Sprintf("%.2f", inc.Millis),
			fmt.Sprintf("%.2f", scr.Millis),
			fmt.Sprintf("%v", match))
	}
	if err := tab.Render(out); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return nil
}
