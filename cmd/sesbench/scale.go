package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ses/internal/colstore"
	"ses/internal/scalegen"
	"ses/internal/session"
	"ses/internal/solver"
)

// scalePoint is one user-count's measured resolve latencies, sparse
// production engine vs candidate-list pruned engine. Cold is a
// from-scratch GRD solve (initial scoring included); warm is the
// steady-state figure — a live session absorbing non-structural
// mutations (Pin/Unpin) and re-resolving on its warm engine, where the
// pruned engine's frozen-tail cache pays off. Utility is identical
// between the engines by construction; the measurement aborts if not.
type scalePoint struct {
	Users        int     `json:"users"`
	CandNNZ      int64   `json:"cand_nnz"`
	SparseColdMs float64 `json:"sparse_cold_ms"`
	PrunedColdMs float64 `json:"pruned_cold_ms"`
	SparseWarmMs float64 `json:"sparse_warm_ms"`
	PrunedWarmMs float64 `json:"pruned_warm_ms"`
	Utility      float64 `json:"utility"`
}

// scaleReport is the BENCH_scale.json document. As with the scaling
// curve, HostCPUs records where it was measured: latency ratios are
// only enforced when the artifact came from a multicore host, where
// timer noise and scheduler interference are bounded.
type scaleReport struct {
	HostCPUs int          `json:"host_cpus"`
	Quick    bool         `json:"quick"`
	Seed     uint64       `json:"seed"`
	K        int          `json:"k"`
	Points   []scalePoint `json:"points"`
}

// The CI-enforced contract on a full multicore artifact: across a
// scaleSpanFloor× growth in users, the pruned engine's warm resolve
// latency may grow at most scaleSpanFloor/scaleSublinearX — i.e. it
// must be at least scaleSublinearX× sublinear — and at the largest
// size it must beat the sparse engine by scaleSpeedupFloor.
const (
	scaleFloorCores   = 4
	scaleSpanFloor    = 100
	scaleSublinearX   = 4.0
	scaleSpeedupFloor = 1.5
)

// scaleSizes are the measured user counts (the paper's Meetup crawl
// has 42444 users; the point of the pruned engine is the two orders of
// magnitude above it).
var scaleSizes = []int{10_000, 100_000, 1_000_000}

// benchScale measures (or, with verify, re-checks a committed) resolve
// latency curve over the user counts and writes it to jsonPath. quick
// shrinks both the sizes and the schedule for CI smokes.
func benchScale(ctx context.Context, out io.Writer, seed uint64, jsonPath string, quick, verify bool) error {
	if verify {
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			return fmt.Errorf("scale verify: %w", err)
		}
		var rep scaleReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("scale verify: %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "verifying %s (host_cpus %d)\n", jsonPath, rep.HostCPUs)
		return checkScale(out, &rep)
	}

	sizes, k, pairs := scaleSizes, 100, 4
	if quick {
		sizes, k, pairs = []int{2_000, 20_000}, 10, 2
	}
	rep := scaleReport{HostCPUs: runtime.NumCPU(), Quick: quick, Seed: seed, K: k}
	dir, err := os.MkdirTemp("", "sesbench-scale-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, users := range sizes {
		if err := ctx.Err(); err != nil {
			return err
		}
		pt, err := measureScalePoint(ctx, dir, users, k, pairs, seed)
		if err != nil {
			return fmt.Errorf("scale: %d users: %w", users, err)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(out, "users=%d (nnz %d): cold sparse %.1fms pruned %.1fms, warm sparse %.2fms pruned %.2fms\n",
			users, pt.CandNNZ, pt.SparseColdMs, pt.PrunedColdMs, pt.SparseWarmMs, pt.PrunedWarmMs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return checkScale(out, &rep)
}

// measureScalePoint generates the columnar instance for one user
// count, memory-maps it, and measures both engines' cold solve and
// warm per-resolve latency.
func measureScalePoint(ctx context.Context, dir string, users, k, pairs int, seed uint64) (scalePoint, error) {
	path := filepath.Join(dir, fmt.Sprintf("scale-%d.sescol", users))
	st, err := scalegen.Generate(path, scalegen.Config{Users: users, K: k, Seed: seed})
	if err != nil {
		return scalePoint{}, err
	}
	store, err := colstore.Open(path)
	if err != nil {
		return scalePoint{}, err
	}
	defer store.Close()
	inst := store.Instance()
	pt := scalePoint{Users: users, CandNNZ: st.CandNNZ}

	type engine struct {
		factory solver.EngineFactory
		cold    *float64
		warm    *float64
	}
	engines := []engine{
		{nil, &pt.SparseColdMs, &pt.SparseWarmMs},
		{solver.PrunedEngine, &pt.PrunedColdMs, &pt.PrunedWarmMs},
	}
	for i, eng := range engines {
		t0 := time.Now()
		res, err := solver.NewGRD(solver.Config{Workers: 1, Engine: eng.factory}).Solve(ctx, inst, k)
		if err != nil {
			return scalePoint{}, err
		}
		*eng.cold = float64(time.Since(t0)) / float64(time.Millisecond)
		if i == 0 {
			pt.Utility = res.Utility
		} else if res.Utility != pt.Utility {
			// The pruned engine is exact; a mismatch is a bug, not noise.
			return scalePoint{}, fmt.Errorf("engine utilities diverge: %v vs %v", res.Utility, pt.Utility)
		}

		s, err := session.New(inst, k, session.Options{Workers: 1, Engine: eng.factory})
		if err != nil {
			return scalePoint{}, err
		}
		if _, err := s.Resolve(ctx); err != nil { // warm the engine
			return scalePoint{}, err
		}
		t0 = time.Now()
		for p := 0; p < pairs; p++ {
			if err := s.Pin(p, p%inst.NumIntervals); err != nil {
				return scalePoint{}, err
			}
			if _, err := s.Resolve(ctx); err != nil {
				return scalePoint{}, err
			}
			if err := s.Unpin(p); err != nil {
				return scalePoint{}, err
			}
			if _, err := s.Resolve(ctx); err != nil {
				return scalePoint{}, err
			}
		}
		*eng.warm = float64(time.Since(t0)) / float64(time.Millisecond) / float64(2*pairs)
	}
	return pt, nil
}

// checkScale validates a scale artifact: the schema always, the
// latency-ratio floors only for full (non-quick) artifacts measured on
// a multicore host.
func checkScale(out io.Writer, rep *scaleReport) error {
	if rep.HostCPUs <= 0 {
		return fmt.Errorf("scale artifact: host_cpus %d, want > 0", rep.HostCPUs)
	}
	if len(rep.Points) < 2 {
		return fmt.Errorf("scale artifact: %d points, want at least 2", len(rep.Points))
	}
	for i, pt := range rep.Points {
		if i > 0 && pt.Users <= rep.Points[i-1].Users {
			return fmt.Errorf("scale artifact: user counts not increasing at point %d", i)
		}
		if pt.Users <= 0 || pt.CandNNZ <= 0 || pt.Utility <= 0 {
			return fmt.Errorf("scale artifact: degenerate point %+v", pt)
		}
		for _, ms := range []float64{pt.SparseColdMs, pt.PrunedColdMs, pt.SparseWarmMs, pt.PrunedWarmMs} {
			if ms <= 0 {
				return fmt.Errorf("scale artifact: non-positive latency in %+v", pt)
			}
		}
	}
	if !rep.Quick {
		for i, want := range scaleSizes {
			if i >= len(rep.Points) || rep.Points[i].Users != want {
				return fmt.Errorf("scale artifact: full run must cover users %v", scaleSizes)
			}
		}
	}

	fmt.Fprintf(out, "\nResolve latency vs users (k=%d, ms)\n", rep.K)
	fmt.Fprintf(out, "%10s %12s %12s %12s %12s %12s\n", "users", "sparse cold", "pruned cold", "sparse warm", "pruned warm", "warm speedup")
	for _, pt := range rep.Points {
		fmt.Fprintf(out, "%10d %12.1f %12.1f %12.2f %12.2f %11.2f×\n",
			pt.Users, pt.SparseColdMs, pt.PrunedColdMs, pt.SparseWarmMs, pt.PrunedWarmMs,
			pt.SparseWarmMs/pt.PrunedWarmMs)
	}

	first, last := rep.Points[0], rep.Points[len(rep.Points)-1]
	span := float64(last.Users) / float64(first.Users)
	growth := last.PrunedWarmMs / first.PrunedWarmMs
	fmt.Fprintf(out, "\npruned warm latency grew %.1f× across a %.0f× user span\n", growth, span)
	if rep.HostCPUs < scaleFloorCores {
		fmt.Fprintf(out, "latency floors not enforced: measured on a %d-CPU host\n", rep.HostCPUs)
		return nil
	}
	if rep.Quick {
		fmt.Fprintf(out, "latency floors not enforced on a -quick artifact\n")
		return nil
	}
	if span < scaleSpanFloor {
		return fmt.Errorf("scale artifact: user span %.0f× below the %d× contract", span, scaleSpanFloor)
	}
	if maxGrowth := span / scaleSublinearX; growth > maxGrowth {
		return fmt.Errorf("pruned warm latency grew %.1f× over a %.0f× user span; the sublinearity floor allows %.1f×",
			growth, span, maxGrowth)
	}
	if speedup := last.SparseWarmMs / last.PrunedWarmMs; speedup < scaleSpeedupFloor {
		return fmt.Errorf("pruned warm resolve at %d users is only %.2f× the sparse engine, below the %.1f× floor",
			last.Users, speedup, scaleSpeedupFloor)
	}
	fmt.Fprintf(out, "floors ok: growth %.1f× ≤ %.1f×, speedup %.2f× ≥ %.1f×\n",
		growth, span/scaleSublinearX, last.SparseWarmMs/last.PrunedWarmMs, scaleSpeedupFloor)
	return nil
}
