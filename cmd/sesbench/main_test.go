package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The sweeps at -scale small with tiny rep counts keep this fast
// enough for the regular test run while exercising the whole harness
// path end to end.

func TestRunFig1aSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "1a", "-scale", "small", "-reps", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Fig 1a: Utility vs k",
		"Fig 1b: Time vs k",
		"Scheduled events",
		"grd", "top", "rand",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "1c", "-scale", "small", "-reps", "1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig1c.csv", "fig1d.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !strings.Contains(string(data), "grd") {
			t.Errorf("%s lacks algorithm columns", f)
		}
	}
}

func TestRunEnginesFig(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_engine.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "engines", "-scale", "small", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Score/sparse", "Score/sparsemap", "Score/dense", "IntervalUtility/sparse", "ns_per_op", "allocs_per_op"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("BENCH_engine.json missing %q", want)
		}
	}
	if !strings.Contains(out.String(), "wrote "+jsonPath) {
		t.Error("output does not mention the JSON file")
	}
}

func TestRunResolveFig(t *testing.T) {
	if testing.Short() {
		t.Skip("session benchmark is seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_resolve.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "resolve", "-scale", "small", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"update_interest", "add_event", "add_competing", "cancel_event", "pin_event",
		"initial_scores", "\"utility_match\": true",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("BENCH_resolve.json missing %q", want)
		}
	}
	if strings.Contains(string(data), "\"utility_match\": false") {
		t.Error("a scenario's utilities diverged")
	}
	if !strings.Contains(out.String(), "incremental Resolve vs from-scratch") {
		t.Error("output missing the resolve table")
	}
}

func TestRunWALFig(t *testing.T) {
	if testing.Short() {
		t.Skip("fsync benchmark is seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_wal.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "wal", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"\"always\"", "\"interval\"", "\"none\"",
		"\"append\"", "\"store_batch\"", "p50_us", "p99_us", "ops_per_sec",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("BENCH_wal.json missing %q", want)
		}
	}
	if !strings.Contains(out.String(), "WAL fsync policies") {
		t.Error("output missing the WAL table")
	}
	for _, want := range []string{
		"\"group_commit\"", "\"lone_append\"", "\"concurrent_single_append\"",
		"\"concurrent_group_append\"", "\"records_per_fsync\"", "\"speedup_x\"",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("BENCH_wal.json missing %q", want)
		}
	}
	if !strings.Contains(out.String(), "group commit (sync=always") {
		t.Error("output missing the group-commit section")
	}
}

func TestRunScalingFig(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement is seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_scaling.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "scaling", "-quick", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	var rep scalingReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HostCPUs <= 0 || !rep.Quick || len(rep.Points) != 4 {
		t.Fatalf("scaling report implausible: %+v", rep)
	}
	for i, procs := range []int{1, 2, 4, 8} {
		pt := rep.Points[i]
		if pt.GoMaxProcs != procs || pt.EngineSolvesPerSec <= 0 || pt.StoreResolvesPerSec <= 0 || pt.WALAppendsPerSec <= 0 {
			t.Errorf("point %d implausible: %+v", i, pt)
		}
	}
	if !strings.Contains(out.String(), "Scaling curve") {
		t.Error("output missing the scaling curve table")
	}

	// -verify must accept the artifact it just wrote...
	var vout bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "scaling", "-verify", "-json", jsonPath}, &vout); err != nil {
		t.Fatalf("verify of fresh artifact: %v", err)
	}
	// ...and reject schema-broken ones.
	for name, doc := range map[string]string{
		"no points":     `{"host_cpus": 4, "points": []}`,
		"bad cpus":      `{"host_cpus": 0, "points": []}`,
		"wrong procs":   `{"host_cpus": 4, "points": [{"gomaxprocs":1},{"gomaxprocs":3},{"gomaxprocs":4},{"gomaxprocs":8}]}`,
		"zero figure":   `{"host_cpus": 1, "points": [{"gomaxprocs":1,"engine_solves_per_sec":1,"store_resolves_per_sec":0,"wal_appends_per_sec":1},{"gomaxprocs":2},{"gomaxprocs":4},{"gomaxprocs":8}]}`,
		"invalid json":  `{`,
		"floor breach":  `{"host_cpus": 8, "points": [{"gomaxprocs":1,"engine_solves_per_sec":1,"store_resolves_per_sec":100,"wal_appends_per_sec":1},{"gomaxprocs":2,"engine_solves_per_sec":1,"store_resolves_per_sec":100,"wal_appends_per_sec":1},{"gomaxprocs":4,"engine_solves_per_sec":1,"store_resolves_per_sec":150,"wal_appends_per_sec":1},{"gomaxprocs":8,"engine_solves_per_sec":1,"store_resolves_per_sec":150,"wal_appends_per_sec":1}]}`,
		"floor ignored": `{"host_cpus": 1, "points": [{"gomaxprocs":1,"engine_solves_per_sec":1,"store_resolves_per_sec":100,"wal_appends_per_sec":1},{"gomaxprocs":2,"engine_solves_per_sec":1,"store_resolves_per_sec":100,"wal_appends_per_sec":1},{"gomaxprocs":4,"engine_solves_per_sec":1,"store_resolves_per_sec":150,"wal_appends_per_sec":1},{"gomaxprocs":8,"engine_solves_per_sec":1,"store_resolves_per_sec":150,"wal_appends_per_sec":1}]}`,
	} {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-fig", "scaling", "-verify", "-json", bad}, &bytes.Buffer{})
		if name == "floor ignored" {
			// Sub-floor curve measured on a 1-CPU host: schema-valid,
			// floor not physical there, so verify passes.
			if err != nil {
				t.Errorf("%s: %v, want accepted", name, err)
			}
		} else if err == nil {
			t.Errorf("%s: accepted, want rejected", name)
		}
	}
}

func TestRunScaleFig(t *testing.T) {
	if testing.Short() {
		t.Skip("scale measurement is seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_scale.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "scale", "-quick", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HostCPUs <= 0 || !rep.Quick || len(rep.Points) != 2 {
		t.Fatalf("scale report implausible: %+v", rep)
	}
	for i, pt := range rep.Points {
		if pt.Users <= 0 || pt.CandNNZ <= 0 || pt.Utility <= 0 ||
			pt.SparseColdMs <= 0 || pt.PrunedColdMs <= 0 || pt.SparseWarmMs <= 0 || pt.PrunedWarmMs <= 0 {
			t.Errorf("point %d implausible: %+v", i, pt)
		}
	}
	if !strings.Contains(out.String(), "Resolve latency vs users") {
		t.Error("output missing the latency table")
	}

	// -verify must accept the artifact it just wrote...
	var vout bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "scale", "-verify", "-json", jsonPath}, &vout); err != nil {
		t.Fatalf("verify of fresh artifact: %v", err)
	}
	// ...and reject schema-broken or floor-breaching ones.
	goodPt := `{"users":10000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":10,"pruned_warm_ms":10,"utility":1}`
	for name, doc := range map[string]string{
		"no points":    `{"host_cpus": 4, "points": []}`,
		"bad cpus":     `{"host_cpus": 0, "points": []}`,
		"one point":    `{"host_cpus": 4, "points": [` + goodPt + `]}`,
		"not sorted":   `{"host_cpus": 4, "quick": true, "points": [` + goodPt + `,` + goodPt + `]}`,
		"zero latency": `{"host_cpus": 4, "quick": true, "points": [` + goodPt + `,{"users":100000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":0,"pruned_warm_ms":10,"utility":1}]}`,
		"invalid json": `{`,
		"wrong sizes":  `{"host_cpus": 1, "points": [` + goodPt + `,{"users":100000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":1,"pruned_warm_ms":1,"utility":1}]}`,
		// Full-size artifact from an 8-CPU host whose pruned warm
		// latency grew linearly with users: sublinearity floor breach.
		"superlinear": `{"host_cpus": 8, "points": [` + goodPt + `,
			{"users":100000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":100,"pruned_warm_ms":100,"utility":1},
			{"users":1000000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":1500,"pruned_warm_ms":1000,"utility":1}]}`,
		// Same shape, but measured on a 1-CPU host: floor not enforced.
		"floor ignored": `{"host_cpus": 1, "points": [` + goodPt + `,
			{"users":100000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":100,"pruned_warm_ms":100,"utility":1},
			{"users":1000000,"cand_nnz":1,"sparse_cold_ms":1,"pruned_cold_ms":1,"sparse_warm_ms":1500,"pruned_warm_ms":1000,"utility":1}]}`,
	} {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-fig", "scale", "-verify", "-json", bad}, &bytes.Buffer{})
		if name == "floor ignored" {
			if err != nil {
				t.Errorf("%s: %v, want accepted", name, err)
			}
		} else if err == nil {
			t.Errorf("%s: accepted, want rejected", name)
		}
	}
}

func TestRunParallelFlagsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	// -workers and -par must leave the utility tables unchanged.
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "1a", "-scale", "small", "-reps", "1", "-workers", "1", "-par", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-fig", "1a", "-scale", "small", "-reps", "1", "-workers", "4", "-par", "3"}, &parallel); err != nil {
		t.Fatal(err)
	}
	// Compare the utility table block: find it by title, then take
	// rows until the blank line.
	extract := func(s string) string {
		idx := strings.Index(s, "Fig 1a: Utility vs k")
		if idx < 0 {
			return ""
		}
		rest := s[idx:]
		if end := strings.Index(rest, "\n\n"); end >= 0 {
			rest = rest[:end]
		}
		return rest
	}
	a, b := extract(serial.String()), extract(parallel.String())
	if a == "" || a != b {
		t.Errorf("utility tables differ between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-fig", "9z"},
		{"-scale", "galactic"},
		{"-algos", "none"},
		{"-wat"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
