package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The sweeps at -scale small with tiny rep counts keep this fast
// enough for the regular test run while exercising the whole harness
// path end to end.

func TestRunFig1aSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	var out bytes.Buffer
	if err := run([]string{"-fig", "1a", "-scale", "small", "-reps", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Fig 1a: Utility vs k",
		"Fig 1b: Time vs k",
		"Scheduled events",
		"grd", "top", "rand",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fig", "1c", "-scale", "small", "-reps", "1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig1c.csv", "fig1d.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !strings.Contains(string(data), "grd") {
			t.Errorf("%s lacks algorithm columns", f)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-fig", "9z"},
		{"-scale", "galactic"},
		{"-algos", "none"},
		{"-wat"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
