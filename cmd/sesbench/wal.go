package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"ses"
	"ses/internal/sestest"
	"ses/internal/stats"
	"ses/internal/tablefmt"
	"ses/internal/wal"
)

// latencies is the JSON shape of one measured op class.
type latencies struct {
	Count     int     `json:"count"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	MaxUs     float64 `json:"max_us"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// summarizeLat folds per-op latencies (seconds) into the reported
// shape; throughput is sum-of-latencies based, i.e. serial ops/sec.
// An empty sample set yields the zero summary — percentiles of
// nothing are not a panic (stats.Percentile's contract) and 0/0 is
// not a NaN that would poison the JSON encoding.
func summarizeLat(lat []float64) latencies {
	if len(lat) == 0 {
		return latencies{}
	}
	sort.Float64s(lat)
	var total float64
	for _, l := range lat {
		total += l
	}
	return latencies{
		Count:     len(lat),
		P50us:     stats.PercentileSorted(lat, 50) * 1e6,
		P99us:     stats.PercentileSorted(lat, 99) * 1e6,
		MaxUs:     lat[len(lat)-1] * 1e6,
		OpsPerSec: float64(len(lat)) / total,
	}
}

// benchWAL prices the write-ahead log's fsync policies. Three levels:
//
//   - raw wal.Log appends (fixed-size payloads) — what one record
//     costs at each policy, isolating fsync from solving;
//   - durable-store ApplyBatch round trips (mutation + incremental
//     resolve + logged commit stamp) — what a served write costs;
//   - group commit under SyncAlways — a lone appender (must keep
//     single-append latency) and concurrent appenders with and
//     without group commit (amortized fsyncs must multiply
//     throughput).
//
// Results print as a table and land in jsonPath (BENCH_wal.json).
func benchWAL(ctx context.Context, out io.Writer, seed uint64, jsonPath string) error {
	const (
		appends      = 256
		payloadBytes = 256
		batches      = 256
		gcAppenders  = 8
		gcPerAppend  = 128
	)

	type policyResult struct {
		Sync   string    `json:"sync"`
		Append latencies `json:"append"`
		Store  latencies `json:"store_batch"`
	}
	type groupCommitResult struct {
		Appenders        int       `json:"appenders"`
		AppendsPer       int       `json:"appends_per_appender"`
		Lone             latencies `json:"lone_append"`
		ConcurrentSingle latencies `json:"concurrent_single_append"`
		ConcurrentGroup  latencies `json:"concurrent_group_append"`
		RecordsPerFsync  float64   `json:"records_per_fsync"`
		SpeedupX         float64   `json:"speedup_x"`
	}
	report := struct {
		Appends      int               `json:"appends"`
		PayloadBytes int               `json:"payload_bytes"`
		Batches      int               `json:"batches"`
		Policies     []policyResult    `json:"policies"`
		GroupCommit  groupCommitResult `json:"group_commit"`
	}{Appends: appends, PayloadBytes: payloadBytes, Batches: batches}

	summarize := summarizeLat

	fmt.Fprintf(out, "\n== WAL fsync policies (%d raw appends of %dB, %d durable batches) ==\n\n",
		appends, payloadBytes, batches)
	tab := &tablefmt.Table{
		Title: "Write-ahead log: what each sync policy costs",
		Header: []string{"sync", "append p50", "append p99", "append/s",
			"batch p50", "batch p99", "batch/s"},
	}

	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	inst := sestest.Random(sestest.Config{Users: 200, Events: 24, Intervals: 6, Competing: 3, Seed: seed})

	for _, pol := range []ses.SyncPolicy{ses.SyncAlways, ses.SyncInterval, ses.SyncNone} {
		if err := ctx.Err(); err != nil {
			return err
		}
		res := policyResult{Sync: pol.String()}

		// Raw append cost.
		rawDir, err := os.MkdirTemp("", "sesbench-wal-*")
		if err != nil {
			return err
		}
		l, err := wal.Open(rawDir, wal.Options{Sync: pol})
		if err != nil {
			return err
		}
		lat := make([]float64, 0, appends)
		for i := 0; i < appends; i++ {
			t0 := time.Now()
			if err := l.Append(payload); err != nil {
				return err
			}
			lat = append(lat, time.Since(t0).Seconds())
		}
		l.Close()
		os.RemoveAll(rawDir)
		res.Append = summarize(lat)

		// Durable-store round trips.
		storeDir, err := os.MkdirTemp("", "sesbench-walstore-*")
		if err != nil {
			return err
		}
		st, err := ses.OpenStore(ses.WithDurability(storeDir), ses.WithSyncPolicy(pol), ses.WithWorkers(1))
		if err != nil {
			return err
		}
		if err := st.Create("bench", inst, 8); err != nil {
			return err
		}
		if _, err := st.Resolve(ctx, "bench"); err != nil {
			return err
		}
		lat = make([]float64, 0, batches)
		for i := 0; i < batches; i++ {
			mut := ses.UpdateInterestOp(i%inst.NumUsers, i%inst.NumEvents(), 0.1+0.8*float64(i%7)/7)
			t0 := time.Now()
			if _, err := st.ApplyBatch(ctx, "bench", []ses.Mutation{mut}); err != nil {
				return err
			}
			lat = append(lat, time.Since(t0).Seconds())
		}
		st.Close()
		os.RemoveAll(storeDir)
		res.Store = summarize(lat)

		report.Policies = append(report.Policies, res)
		tab.AddRow(res.Sync,
			fmt.Sprintf("%.1fµs", res.Append.P50us),
			fmt.Sprintf("%.1fµs", res.Append.P99us),
			fmt.Sprintf("%.0f", res.Append.OpsPerSec),
			fmt.Sprintf("%.1fµs", res.Store.P50us),
			fmt.Sprintf("%.1fµs", res.Store.P99us),
			fmt.Sprintf("%.0f", res.Store.OpsPerSec))
	}
	if err := tab.Render(out); err != nil {
		return err
	}

	// Group commit under SyncAlways: a lone appender must keep
	// single-append latency, and concurrent appenders must amortize
	// fsyncs. Concurrent throughput is wall-clock based (per-op
	// latencies overlap across appenders).
	gc := &report.GroupCommit
	gc.Appenders, gc.AppendsPer = gcAppenders, gcPerAppend

	loneDir, err := os.MkdirTemp("", "sesbench-walgc-*")
	if err != nil {
		return err
	}
	l, err := wal.Open(loneDir, wal.Options{Sync: ses.SyncAlways, GroupCommit: wal.GroupCommit{Enabled: true}})
	if err != nil {
		return err
	}
	lat := make([]float64, 0, appends)
	for i := 0; i < appends; i++ {
		t0 := time.Now()
		if err := l.Append(payload); err != nil {
			return err
		}
		lat = append(lat, time.Since(t0).Seconds())
	}
	l.Close()
	os.RemoveAll(loneDir)
	gc.Lone = summarize(lat)

	concurrent := func(enabled bool) (latencies, wal.Stats, error) {
		dir, err := os.MkdirTemp("", "sesbench-walgcc-*")
		if err != nil {
			return latencies{}, wal.Stats{}, err
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(dir, wal.Options{Sync: ses.SyncAlways, GroupCommit: wal.GroupCommit{Enabled: enabled}})
		if err != nil {
			return latencies{}, wal.Stats{}, err
		}
		defer l.Close()
		perG := make([][]float64, gcAppenders)
		errs := make([]error, gcAppenders)
		var wg sync.WaitGroup
		wall0 := time.Now()
		for g := 0; g < gcAppenders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < gcPerAppend; i++ {
					t0 := time.Now()
					if err := l.Append(payload); err != nil {
						errs[g] = err
						return
					}
					perG[g] = append(perG[g], time.Since(t0).Seconds())
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(wall0).Seconds()
		for _, err := range errs {
			if err != nil {
				return latencies{}, wal.Stats{}, err
			}
		}
		var all []float64
		for _, s := range perG {
			all = append(all, s...)
		}
		res := summarize(all)
		res.OpsPerSec = float64(len(all)) / wall
		return res, l.Stats(), nil
	}
	var single, grouped latencies
	var gcStats wal.Stats
	if single, _, err = concurrent(false); err != nil {
		return err
	}
	if grouped, gcStats, err = concurrent(true); err != nil {
		return err
	}
	gc.ConcurrentSingle, gc.ConcurrentGroup = single, grouped
	gc.RecordsPerFsync = gcStats.RecordsPerFsync()
	if single.OpsPerSec > 0 {
		gc.SpeedupX = grouped.OpsPerSec / single.OpsPerSec
	}

	fmt.Fprintf(out, "\n== group commit (sync=always, %d appenders × %d appends) ==\n\n", gcAppenders, gcPerAppend)
	fmt.Fprintf(out, "  lone appender      p50 %8.1fµs  p99 %8.1fµs (single-append latency preserved)\n",
		gc.Lone.P50us, gc.Lone.P99us)
	fmt.Fprintf(out, "  concurrent single  %8.0f appends/s\n", single.OpsPerSec)
	fmt.Fprintf(out, "  concurrent grouped %8.0f appends/s  (%.1f× , %.1f records/fsync)\n",
		grouped.OpsPerSec, gc.SpeedupX, gc.RecordsPerFsync)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return nil
}
