package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ses/internal/choice"
	"ses/internal/dataset"
	"ses/internal/ebsn"
)

// This file implements `sesbench -fig objectives`: microbenchmarks of
// the production Sparse engine's hot paths — Score, Apply+Unapply and
// IntervalUtility — under each registered objective. The omega rows
// measure the cost of the objective indirection itself (they should
// sit within noise of the engine bench's sparse rows, which this PR's
// acceptance criteria pin), while the attendance and fairness rows
// price the thresholded fold and the nonlinear min-fold re-scoring.

// objectiveBench is one benchmark row of BENCH_objective.json.
type objectiveBench struct {
	Name        string  `json:"name"` // e.g. "Score/fairness:0.5"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// objectiveReport is the BENCH_objective.json document.
type objectiveReport struct {
	Users      int              `json:"users"`
	Events     int              `json:"events"`
	Intervals  int              `json:"intervals"`
	Competing  int              `json:"competing"`
	Scheduled  int              `json:"scheduled"`
	Engine     string           `json:"engine"`
	Benchmarks []objectiveBench `json:"benchmarks"`
}

// benchObjectives runs the per-objective hot-path microbenchmarks and
// writes the JSON report to jsonPath.
func benchObjectives(out io.Writer, ds *ebsn.Dataset, seed uint64, jsonPath string) error {
	probe, err := os.OpenFile(jsonPath, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	// Same instance shape as the engine ablation bench, so the omega
	// rows are directly comparable to BENCH_engine.json's sparse rows.
	const k = 60
	inst, err := dataset.BuildInstance(ds, dataset.PaperParams{
		K: k, Intervals: 90, CandidateEvents: 120, Seed: seed,
	})
	if err != nil {
		return err
	}
	report := objectiveReport{
		Users:     inst.NumUsers,
		Events:    inst.NumEvents(),
		Intervals: inst.NumIntervals,
		Competing: len(inst.Competing),
		Scheduled: k,
		Engine:    "sparse",
	}

	fmt.Fprintf(out, "objective microbenchmarks (sparse engine): %d users, %d events, %d intervals, %d competing, %d scheduled\n\n",
		inst.NumUsers, inst.NumEvents(), inst.NumIntervals, len(inst.Competing), k)

	for _, obj := range choice.Objectives() {
		eng := choice.NewSparse(inst)
		eng.SetObjective(obj)
		loadEngine(eng, k)

		score := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = eng.Score(i%inst.NumEvents(), i%inst.NumIntervals)
			}
		})
		applyEng := choice.NewSparse(inst)
		applyEng.SetObjective(obj)
		loadEngine(applyEng, k)
		victim := applyEng.Schedule().Assignments()[0]
		applyBench := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := applyEng.Unapply(victim.Event); err != nil {
					b.Fatal(err)
				}
				if err := applyEng.Apply(victim.Event, victim.Interval); err != nil {
					b.Fatal(err)
				}
			}
		})
		iu := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = eng.IntervalUtility(i % inst.NumIntervals)
			}
		})

		for _, row := range []struct {
			op  string
			res testing.BenchmarkResult
		}{
			{"Score", score},
			{"UnapplyApply", applyBench},
			{"IntervalUtility", iu},
		} {
			bench := objectiveBench{
				Name:        row.op + "/" + obj.Name(),
				NsPerOp:     float64(row.res.NsPerOp()),
				AllocsPerOp: row.res.AllocsPerOp(),
				BytesPerOp:  row.res.AllocedBytesPerOp(),
			}
			report.Benchmarks = append(report.Benchmarks, bench)
			fmt.Fprintf(out, "%-32s %12.0f ns/op %8d B/op %6d allocs/op\n",
				bench.Name, bench.NsPerOp, bench.BytesPerOp, bench.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return nil
}
