package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"ses/internal/choice"
	"ses/internal/core"
	"ses/internal/dataset"
	"ses/internal/ebsn"
)

// This file implements `sesbench -fig engines`: microbenchmarks of the
// three choice engines on the operations the solvers actually pay for
// — Score (Eq. 4), Apply+Unapply (incremental schedule maintenance)
// and IntervalUtility (Eq. 3 per interval) — comparing the current
// sorted-accumulator Sparse engine against the previous map-based
// SparseMap engine and the paper-faithful Dense engine. Results go to
// stdout and to a JSON file so regressions are diffable across
// commits.

// engineBench is one benchmark row of BENCH_engine.json.
type engineBench struct {
	Name        string  `json:"name"`      // e.g. "Score/sparse"
	NsPerOp     float64 `json:"ns_per_op"` //
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// engineReport is the BENCH_engine.json document.
type engineReport struct {
	Users      int           `json:"users"`
	Events     int           `json:"events"`
	Intervals  int           `json:"intervals"`
	Competing  int           `json:"competing"`
	Scheduled  int           `json:"scheduled"`
	Benchmarks []engineBench `json:"benchmarks"`
}

// engineFactories lists the engines under comparison: the production
// sorted-accumulator engine, its map-based predecessor, and the dense
// paper-faithful baseline.
func engineFactories() []struct {
	name  string
	build func(*core.Instance) choice.Engine
} {
	return []struct {
		name  string
		build func(*core.Instance) choice.Engine
	}{
		{"sparse", func(in *core.Instance) choice.Engine { return choice.NewSparse(in) }},
		{"sparsemap", func(in *core.Instance) choice.Engine { return choice.NewSparseMap(in) }},
		{"dense", func(in *core.Instance) choice.Engine { return choice.NewDense(in) }},
	}
}

// loadEngine fills the engine with k assignments via the shared
// round-robin fill so the benchmarks see the same non-trivial
// scheduled mass as the choice package benchmarks.
func loadEngine(eng choice.Engine, k int) {
	if err := choice.FillRoundRobin(eng, k); err != nil {
		panic(err)
	}
}

// benchEngines runs the engine microbenchmarks and writes the JSON
// report to jsonPath.
func benchEngines(out io.Writer, ds *ebsn.Dataset, seed uint64, jsonPath string) error {
	// Fail fast on an unwritable output path rather than after a
	// minute of benchmarking — without truncating an existing report
	// that a mid-run failure would otherwise destroy.
	probe, err := os.OpenFile(jsonPath, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	const k = 60
	inst, err := dataset.BuildInstance(ds, dataset.PaperParams{
		K: k, Intervals: 90, CandidateEvents: 120, Seed: seed,
	})
	if err != nil {
		return err
	}
	report := engineReport{
		Users:     inst.NumUsers,
		Events:    inst.NumEvents(),
		Intervals: inst.NumIntervals,
		Competing: len(inst.Competing),
		Scheduled: k,
	}

	fmt.Fprintf(out, "engine microbenchmarks: %d users, %d events, %d intervals, %d competing, %d scheduled\n\n",
		inst.NumUsers, inst.NumEvents(), inst.NumIntervals, len(inst.Competing), k)

	for _, f := range engineFactories() {
		eng := f.build(inst)
		loadEngine(eng, k)

		score := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = eng.Score(i%inst.NumEvents(), i%inst.NumIntervals)
			}
		})
		applyEng := f.build(inst)
		loadEngine(applyEng, k)
		victim := applyEng.Schedule().Assignments()[0]
		applyBench := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := applyEng.Unapply(victim.Event); err != nil {
					b.Fatal(err)
				}
				if err := applyEng.Apply(victim.Event, victim.Interval); err != nil {
					b.Fatal(err)
				}
			}
		})
		iu := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = eng.IntervalUtility(i % inst.NumIntervals)
			}
		})

		for _, row := range []struct {
			op  string
			res testing.BenchmarkResult
		}{
			{"Score", score},
			{"UnapplyApply", applyBench},
			{"IntervalUtility", iu},
		} {
			bench := engineBench{
				Name:        row.op + "/" + f.name,
				NsPerOp:     float64(row.res.NsPerOp()),
				AllocsPerOp: row.res.AllocsPerOp(),
				BytesPerOp:  row.res.AllocedBytesPerOp(),
			}
			report.Benchmarks = append(report.Benchmarks, bench)
			fmt.Fprintf(out, "%-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
				bench.Name, bench.NsPerOp, bench.BytesPerOp, bench.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	return nil
}
