package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunClusterFig(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster measurement boots replicated nodes and is seconds-long")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_cluster.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "cluster", "-quick", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("cluster fig: %v\n%s", err, out.String())
	}
	var rep clusterReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HostCPUs <= 0 || !rep.Quick || len(rep.Throughput) != 3 {
		t.Fatalf("cluster report implausible: %+v", rep)
	}
	for i, nodes := range []int{1, 2, 3} {
		pt := rep.Throughput[i]
		if pt.Nodes != nodes || pt.OpsPerSec <= 0 || pt.SpeedupX <= 0 {
			t.Errorf("throughput point %d implausible: %+v", i, pt)
		}
	}
	fo := rep.Failover
	if !fo.AckedPreserved || fo.AdoptedSessions <= 0 || fo.KillToPromotedMS <= 0 ||
		fo.KillToDownMS <= 0 || fo.KillToWriteMS < fo.KillToPromotedMS {
		t.Errorf("failover timeline implausible: %+v", fo)
	}
	sa := rep.SyncAck
	if sa.AsyncOpsPerSec <= 0 || sa.SyncOpsPerSec <= 0 || sa.CostX <= 0 ||
		sa.AckWaitP99MS < sa.AckWaitP50MS || sa.AckTimeouts != 0 {
		t.Errorf("sync-ack section implausible: %+v", sa)
	}
	if !strings.Contains(out.String(), "Cluster throughput") {
		t.Error("output missing the cluster throughput table")
	}

	// -verify must accept the artifact it just wrote...
	var vout bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "cluster", "-verify", "-json", jsonPath}, &vout); err != nil {
		t.Fatalf("verify of fresh artifact: %v\n%s", err, vout.String())
	}

	// ...and reject broken ones. The floor-ignored doc is schema-valid
	// but sub-floor, measured on a 1-CPU host where the floor is not
	// physical, so it passes; the floor-breach doc is the same curve
	// stamped with an 8-CPU host and must fail.
	goodFO := `"failover":{"kill_to_down_ms":30,"kill_to_promoted_ms":35,"kill_to_first_write_ms":36,"adopted_sessions":3,"acked_preserved":true}`
	goodSA := `"sync_ack":{"sessions":4,"ops":10,"async_ops_per_sec":100,"sync_ops_per_sec":80,"cost_x":1.25,"ack_wait_p50_ms":2,"ack_wait_p99_ms":8,"ack_timeouts":0}`
	flatTP := `"throughput":[{"nodes":1,"sessions":6,"ops_per_sec":100,"speedup_x":1},{"nodes":2,"sessions":6,"ops_per_sec":100,"speedup_x":1},{"nodes":3,"sessions":6,"ops_per_sec":110,"speedup_x":1.1}]`
	for name, doc := range map[string]string{
		"invalid json":  `{`,
		"bad cpus":      `{"host_cpus":0,` + flatTP + `,` + goodSA + `,` + goodFO + `}`,
		"missing point": `{"host_cpus":1,"throughput":[{"nodes":1,"ops_per_sec":1,"speedup_x":1}],` + goodSA + `,` + goodFO + `}`,
		"wrong nodes":   `{"host_cpus":1,"throughput":[{"nodes":1,"ops_per_sec":1},{"nodes":2,"ops_per_sec":1},{"nodes":4,"ops_per_sec":1}],` + goodSA + `,` + goodFO + `}`,
		"acked lost":    `{"host_cpus":1,` + flatTP + `,` + goodSA + `,"failover":{"kill_to_down_ms":30,"kill_to_promoted_ms":35,"kill_to_first_write_ms":36,"adopted_sessions":3,"acked_preserved":false}}`,
		"no promotion":  `{"host_cpus":1,` + flatTP + `,` + goodSA + `,"failover":{"adopted_sessions":0,"acked_preserved":true}}`,
		"no sync ack":   `{"host_cpus":1,` + flatTP + `,` + goodFO + `}`,
		"ack timed out": `{"host_cpus":1,` + flatTP + `,"sync_ack":{"async_ops_per_sec":100,"sync_ops_per_sec":80,"ack_timeouts":2},` + goodFO + `}`,
		"floor breach":  `{"host_cpus":8,` + flatTP + `,` + goodSA + `,` + goodFO + `}`,
		"floor ignored": `{"host_cpus":1,` + flatTP + `,` + goodSA + `,` + goodFO + `}`,
	} {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), []string{"-fig", "cluster", "-verify", "-json", bad}, &bytes.Buffer{})
		if name == "floor ignored" {
			if err != nil {
				t.Errorf("%s: %v, want accepted", name, err)
			}
		} else if err == nil {
			t.Errorf("%s: accepted, want rejected", name)
		}
	}
}

func TestClusterQuickVerifyFlagGuards(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "wal", "-quick"}, &out); err == nil {
		t.Error("-quick with -fig wal accepted")
	}
	if err := run(context.Background(), []string{"-fig", "engines", "-verify"}, &out); err == nil {
		t.Error("-verify with -fig engines accepted")
	}
}
