package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestClusterClientRetryPolicy pins the ack semantics the loss check
// depends on: transient failures (transport errors, 5xx) retry until
// acknowledged, 4xx returns immediately as an acknowledged rejection.
func TestClusterClientRetryPolicy(t *testing.T) {
	var gets, posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/flaky-get":
			if gets.Add(1) < 3 {
				http.Error(w, "dying", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"ok":true}`))
		case "/flaky-post":
			if posts.Add(1) < 3 {
				http.Error(w, "mid-failover", http.StatusBadGateway)
				return
			}
			w.Write([]byte(`{}`))
		case "/reject":
			http.Error(w, "no such session", http.StatusNotFound)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer srv.Close()

	cc := &clusterClient{base: srv.URL, client: srv.Client()}
	ctx := context.Background()

	var doc struct {
		OK bool `json:"ok"`
	}
	if err := cc.get(ctx, "/flaky-get", &doc); err != nil || !doc.OK {
		t.Fatalf("get after 5xxs: %v (doc %+v)", err, doc)
	}
	if n := gets.Load(); n != 3 {
		t.Errorf("get tried %d times, want 3", n)
	}
	if err := cc.post(ctx, "/flaky-post", map[string]int{"x": 1}, nil); err != nil {
		t.Fatalf("post after 5xxs: %v", err)
	}
	if n := posts.Load(); n != 3 {
		t.Errorf("post tried %d times, want 3", n)
	}

	// 4xx: acknowledged rejection, no retry, immediate error.
	if err := cc.post(ctx, "/reject", map[string]int{}, nil); err == nil {
		t.Error("post to 404 succeeded")
	}
	if err := cc.get(ctx, "/reject", &doc); err == nil {
		t.Error("get of 404 succeeded")
	}

	// A cancelled context stops the retry loop promptly instead of
	// burning the full retry deadline.
	gets.Store(0) // back under the threshold: /flaky-get 503s again
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := cc.get(cctx, "/flaky-get", &doc); err == nil {
		t.Error("get with cancelled context succeeded")
	}
}
