package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ses"
)

// stubDaemon mimics the sesd session surface closely enough for the
// cluster driver: it keeps real acked counters per session and can be
// told to fail every Nth write with a 503 (a node dying mid-request)
// to exercise the retry path.
type stubDaemon struct {
	mu       sync.Mutex
	sessions map[string]*ses.SessionMeta
	writes   int
	failMod  int // every failMod'th write 503s before applying
}

func newStubDaemon(failMod int) *stubDaemon {
	return &stubDaemon{sessions: map[string]*ses.SessionMeta{}, failMod: failMod}
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		d.mu.Lock()
		d.sessions[req.Name] = &ses.SessionMeta{Name: req.Name}
		d.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, "{}")
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		metas := make([]ses.SessionMeta, 0, len(d.sessions))
		for _, m := range d.sessions {
			metas = append(metas, *m)
		}
		d.mu.Unlock()
		json.NewEncoder(w).Encode(metas)
	})
	mux.HandleFunc("GET /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		m, ok := d.sessions[r.PathValue("name")]
		if !ok {
			d.mu.Unlock()
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		cp := *m
		d.mu.Unlock()
		json.NewEncoder(w).Encode(cp)
	})
	mux.HandleFunc("GET /v1/sessions/{name}/schedule", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"assignments":[],"utility":0}`)
	})
	write := func(w http.ResponseWriter, r *http.Request, apply func(m *ses.SessionMeta)) {
		d.mu.Lock()
		d.writes++
		if d.failMod > 0 && d.writes%d.failMod == 0 {
			d.mu.Unlock()
			http.Error(w, "node dying", http.StatusServiceUnavailable)
			return
		}
		m, ok := d.sessions[r.PathValue("name")]
		if !ok {
			d.mu.Unlock()
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		apply(m)
		d.mu.Unlock()
		fmt.Fprint(w, "{}")
	}
	mux.HandleFunc("POST /v1/sessions/{name}/resolve", func(w http.ResponseWriter, r *http.Request) {
		write(w, r, func(m *ses.SessionMeta) { m.Resolves++ })
	})
	mux.HandleFunc("POST /v1/sessions/{name}/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Mutations []json.RawMessage `json:"mutations"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		write(w, r, func(m *ses.SessionMeta) {
			m.Mutations += uint64(len(req.Mutations))
			m.Batches++
			m.Resolves++
		})
	})
	return mux
}

// TestClusterDriveAndCheckAcks drives the stub through the cluster
// path — with every 7th write 503ing so the retry loop is exercised —
// then verifies the ack file both against the intact stub (must pass)
// and after counters are rolled back (must report loss).
func TestClusterDriveAndCheckAcks(t *testing.T) {
	stub := newStubDaemon(7)
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	dir := t.TempDir()
	ackPath := filepath.Join(dir, "acks.json")
	var out bytes.Buffer
	err := run([]string{
		"-cluster", srv.URL,
		"-sessions", "4",
		"-duration", "300ms",
		"-users", "10", "-events", "6", "-intervals", "3", "-competing", "1", "-k", "3",
		"-ack-file", ackPath,
		"-json", filepath.Join(dir, "rep.json"),
	}, &out)
	if err != nil {
		t.Fatalf("cluster run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "acknowledged counters written") {
		t.Errorf("missing ack-file line in output:\n%s", out.String())
	}

	var acks ackDoc
	data, err := os.ReadFile(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &acks); err != nil {
		t.Fatal(err)
	}
	if len(acks.Sessions) != 4 {
		t.Fatalf("ack file has %d sessions, want 4", len(acks.Sessions))
	}
	var totalOps uint64
	for name, c := range acks.Sessions {
		m := stub.sessions[name]
		if m == nil {
			t.Fatalf("acked session %s unknown to stub", name)
		}
		if m.Mutations < c.Mutations || m.Batches < c.Batches || m.Resolves < c.Resolves {
			t.Errorf("%s: stub has %d/%d/%d, acked %d/%d/%d",
				name, m.Mutations, m.Batches, m.Resolves, c.Mutations, c.Batches, c.Resolves)
		}
		totalOps += c.Batches + c.Resolves
	}
	if totalOps == 0 {
		t.Fatal("drivers acknowledged no ops")
	}

	// Verification against the intact stub passes.
	out.Reset()
	if err := run([]string{"-check-acks", ackPath, "-cluster", srv.URL}, &out); err != nil {
		t.Fatalf("check-acks on intact cluster: %v\n%s", err, out.String())
	}

	// Roll one session's counters back — simulated acknowledged loss —
	// and the check must fail, naming the session.
	var victim string
	for name := range acks.Sessions {
		if acks.Sessions[name].Mutations > 0 {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no session with acked mutations")
	}
	stub.mu.Lock()
	stub.sessions[victim].Mutations = 0
	stub.mu.Unlock()
	out.Reset()
	if err := run([]string{"-check-acks", ackPath, "-cluster", srv.URL}, &out); err == nil {
		t.Fatalf("check-acks missed the rollback:\n%s", out.String())
	}
	if !strings.Contains(out.String(), victim) {
		t.Errorf("loss report does not name %s:\n%s", victim, out.String())
	}
}

func TestClusterFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ack-file", "x.json"}, &out); err == nil {
		t.Error("-ack-file without -cluster accepted")
	}
	if err := run([]string{"-cluster", "http://x", "-durable", t.TempDir()}, &out); err == nil {
		t.Error("-cluster with -durable accepted")
	}
	if err := run([]string{"-check-acks", "nope.json"}, &out); err == nil {
		t.Error("-check-acks without -cluster accepted")
	}
}
