package main

// Cluster mode: instead of driving an in-process store, sesload
// -cluster URL drives a sesd daemon or sesrouter front over HTTP with
// the same kind of mixed workload, and records what the cluster
// ACKNOWLEDGED — an op counts only when its 2xx response arrives. The
// resulting -ack-file is the ground truth for the kill -9 smoke test:
// after a node is killed mid-run and the router fails over,
// `sesload -check-acks FILE -cluster URL` re-reads every session's
// counters from the surviving cluster and fails if any acknowledged
// mutation went missing. Transient errors (a node dying, the router
// converging) are retried until the drive deadline, and only the
// retried op's eventual success is acknowledged.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ses"
	"ses/internal/core"
	"ses/internal/dataset"
	"ses/internal/randx"
	"ses/internal/sestest"
)

// ackCounters is one session's acknowledged-op tally: every count was
// confirmed by a 2xx response, so the cluster must never report less.
type ackCounters struct {
	Mutations uint64 `json:"mutations"`
	Batches   uint64 `json:"batches"`
	Resolves  uint64 `json:"resolves"`
}

// ackDoc is the -ack-file document.
type ackDoc struct {
	Cluster  string                 `json:"cluster"`
	Sessions map[string]ackCounters `json:"sessions"`
}

// clusterClient wraps the HTTP calls one driver makes.
type clusterClient struct {
	base   string
	client *http.Client
}

// retryDeadline bounds how long a failed op is retried: long enough
// to ride out a node kill plus router convergence, short enough that
// a genuinely dead cluster fails the run.
const retryDeadline = 30 * time.Second

// post sends one JSON request, retrying transient failures (transport
// errors and 5xx — a dying node or a router mid-failover) until the
// op is acknowledged or the retry deadline expires. 4xx is never
// retried: it is an acknowledged rejection, not a loss.
func (c *clusterClient) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(retryDeadline)
	for {
		req, err := http.NewRequestWithContext(ctx, "POST", c.base+path, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err == nil {
			respBody, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr == nil && resp.StatusCode < 300:
				if out == nil {
					return nil
				}
				return json.Unmarshal(respBody, out)
			case resp.StatusCode >= 300 && resp.StatusCode < 500:
				return fmt.Errorf("POST %s: %s: %s", path, resp.Status, respBody)
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("POST %s: %w", path, err)
			}
			return fmt.Errorf("POST %s: gave up retrying", path)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// get fetches one JSON document with the same retry policy.
func (c *clusterClient) get(ctx context.Context, path string, out any) error {
	deadline := time.Now().Add(retryDeadline)
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr == nil && resp.StatusCode < 300:
				return json.Unmarshal(body, out)
			case resp.StatusCode >= 300 && resp.StatusCode < 500:
				return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("GET %s: %w", path, err)
			}
			return fmt.Errorf("GET %s: gave up retrying", path)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// clusterDriveResult is one driver's contribution in cluster mode.
type clusterDriveResult struct {
	lat  [numOps][]float64
	warm float64
	acks ackCounters
	err  error
}

// runCluster is the -cluster entry point: N drivers over HTTP, acked
// counters recorded per session, optional -ack-file at the end.
func runCluster(clusterURL, ackFile, jsonPath, namePrefix string, sessions int, duration time.Duration,
	users, events, intervals, competing, k int, seed uint64, out io.Writer) error {
	ctx := context.Background()
	cc := &clusterClient{base: clusterURL, client: &http.Client{Timeout: 60 * time.Second}}

	names := make([]string, sessions)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", namePrefix, i)
		inst := sestest.Random(sestest.Config{
			Users: users, Events: events, Intervals: intervals,
			Competing: competing, Seed: seed + uint64(i),
		})
		doc, err := dataset.NewInstanceDoc(inst)
		if err != nil {
			return err
		}
		if err := cc.post(ctx, "/v1/sessions", map[string]any{
			"name": names[i], "k": k, "instance": doc,
		}, nil); err != nil {
			return err
		}
	}

	results := make([]clusterDriveResult, sessions)
	var warmed, wg sync.WaitGroup
	start := make(chan struct{})
	warmStart := time.Now()
	for i := 0; i < sessions; i++ {
		warmed.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveClusterSession(ctx, cc, names[i], i, seed, users, events, intervals, &warmed, start, duration)
		}(i)
	}
	warmed.Wait()
	warmupElapsed := time.Since(warmStart)
	close(start)
	measureStart := time.Now()
	wg.Wait()
	elapsed := time.Since(measureStart)

	rep := report{
		Sessions:   sessions,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Users:      users,
		Events:     events,
		Intervals:  intervals,
		K:          k,
		Ops:        map[string]latencySummary{},
	}
	acks := ackDoc{Cluster: clusterURL, Sessions: map[string]ackCounters{}}
	var merged [numOps][]float64
	var warm []float64
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("session %s: %w", names[i], results[i].err)
		}
		for c := 0; c < numOps; c++ {
			merged[c] = append(merged[c], results[i].lat[c]...)
		}
		warm = append(warm, results[i].warm)
		acks.Sessions[names[i]] = results[i].acks
	}
	rep.DurationSec = elapsed.Seconds()
	rep.WarmupSec = warmupElapsed.Seconds()
	rep.DriversPerCore = float64(sessions) / float64(runtime.GOMAXPROCS(0))
	sort.Float64s(warm)
	rep.Warmup = summarize(warm)
	for c := 0; c < numOps; c++ {
		lat := merged[c]
		sort.Float64s(lat)
		rep.TotalOps += len(lat)
		if len(lat) == 0 {
			continue
		}
		rep.Ops[opNames[c]] = summarize(lat)
	}
	rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()

	fmt.Fprintf(out, "sesload: cluster %s, %d sessions, %.2fs, %d ops (%.0f ops/sec)\n",
		clusterURL, sessions, rep.DurationSec, rep.TotalOps, rep.OpsPerSec)
	for c := 0; c < numOps; c++ {
		if s, ok := rep.Ops[opNames[c]]; ok {
			fmt.Fprintf(out, "  %-8s %7d ops  p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs  max %8.1fµs\n",
				opNames[c], s.Count, s.P50us, s.P90us, s.P99us, s.MaxUs)
		}
	}
	if jsonPath != "" {
		if err := writeJSONFile(jsonPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", jsonPath)
	}
	if ackFile != "" {
		if err := writeJSONFile(ackFile, acks); err != nil {
			return err
		}
		fmt.Fprintf(out, "acknowledged counters written to %s\n", ackFile)
	}
	return nil
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// driveClusterSession runs one session's HTTP workload: ~50% batches
// (two mutations), ~30% resolves, ~20% metadata/schedule reads. Every
// acknowledged write bumps the driver's acked counters; a retried op
// is counted once, when its success response finally arrives.
func driveClusterSession(ctx context.Context, cc *clusterClient, name string, idx int, seed uint64,
	users, events, intervals int, warmed *sync.WaitGroup, start <-chan struct{}, dur time.Duration) (res clusterDriveResult) {
	src := randx.Derive(seed+uint64(idx), "sesload-cluster")

	observe := func(c int, f func() error) bool {
		t0 := time.Now()
		err := f()
		res.lat[c] = append(res.lat[c], time.Since(t0).Seconds())
		if err != nil {
			res.err = err
			return false
		}
		return true
	}

	t0 := time.Now()
	err := cc.post(ctx, "/v1/sessions/"+name+"/resolve", map[string]any{}, nil)
	res.warm = time.Since(t0).Seconds()
	warmed.Done()
	if err != nil {
		res.err = err
		return
	}
	res.acks.Resolves++
	<-start
	deadline := time.Now().Add(dur)

	for time.Now().Before(deadline) {
		switch r := src.IntN(10); {
		case r < 5: // batch of two mutations
			muts := []ses.Mutation{
				ses.UpdateInterestOp(src.IntN(users), src.IntN(events), src.Range(0, 1)),
				ses.AddCompetingOp(core.CompetingEvent{Interval: src.IntN(intervals)},
					map[int]float64{src.IntN(users): src.Range(0.1, 1)}),
			}
			if !observe(opBatch, func() error {
				return cc.post(ctx, "/v1/sessions/"+name+"/batch", map[string]any{"mutations": muts}, nil)
			}) {
				return
			}
			res.acks.Batches++
			res.acks.Mutations += uint64(len(muts))
			res.acks.Resolves++ // the batch's own committed resolve
		case r < 8: // resolve
			if !observe(opResolve, func() error {
				return cc.post(ctx, "/v1/sessions/"+name+"/resolve", map[string]any{}, nil)
			}) {
				return
			}
			res.acks.Resolves++
		case r < 9: // metadata read
			if !observe(opMutate, func() error {
				var m ses.SessionMeta
				return cc.get(ctx, "/v1/sessions/"+name, &m)
			}) {
				return
			}
		default: // schedule read
			if !observe(opSnapshot, func() error {
				var s struct {
					Assignments []ses.Assignment `json:"assignments"`
				}
				return cc.get(ctx, "/v1/sessions/"+name+"/schedule", &s)
			}) {
				return
			}
		}
	}
	return
}

// runCheckAcks is the -check-acks verifier: it reloads the ack file a
// previous -cluster run wrote and asserts the cluster still holds at
// least every acknowledged op — the zero-acknowledged-loss invariant
// the kill -9 smoke test checks after failover. Counters may exceed
// the acks (an op that committed but whose response was lost is
// retried and double-counted server-side); they must never fall
// short.
func runCheckAcks(ackPath, clusterURL string, out io.Writer) error {
	if clusterURL == "" {
		return fmt.Errorf("-check-acks needs -cluster URL")
	}
	raw, err := os.ReadFile(ackPath)
	if err != nil {
		return err
	}
	var acks ackDoc
	if err := json.Unmarshal(raw, &acks); err != nil {
		return err
	}
	cc := &clusterClient{base: clusterURL, client: &http.Client{Timeout: 60 * time.Second}}
	ctx := context.Background()
	// One list call instead of per-session GETs: the router's list
	// fans out to every live node and keeps each session's entry from
	// its effective primary, so the counters are authoritative — a
	// per-session GET could round-robin onto a follower replica that
	// legitimately trails by a few records.
	var metas []ses.SessionMeta
	if err := cc.get(ctx, "/v1/sessions", &metas); err != nil {
		return err
	}
	byName := make(map[string]ses.SessionMeta, len(metas))
	for _, m := range metas {
		byName[m.Name] = m
	}
	var lost []string
	names := make([]string, 0, len(acks.Sessions))
	for name := range acks.Sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := acks.Sessions[name]
		m, ok := byName[name]
		if !ok {
			lost = append(lost, fmt.Sprintf("%s: missing from the cluster after failover", name))
			continue
		}
		if m.Mutations < want.Mutations || m.Batches < want.Batches || m.Resolves < want.Resolves {
			lost = append(lost, fmt.Sprintf("%s: cluster has mutations=%d batches=%d resolves=%d, acknowledged mutations=%d batches=%d resolves=%d",
				name, m.Mutations, m.Batches, m.Resolves, want.Mutations, want.Batches, want.Resolves))
		}
	}
	if len(lost) > 0 {
		for _, l := range lost {
			fmt.Fprintln(out, "LOST:", l)
		}
		return fmt.Errorf("%d of %d sessions lost acknowledged operations", len(lost), len(acks.Sessions))
	}
	fmt.Fprintf(out, "sesload: all %d sessions retain every acknowledged operation\n", len(acks.Sessions))
	return nil
}
