// Command sesload load-tests the concurrent serving layer: it creates
// N sessions in one ses.Store and drives every session from its own
// goroutine with a mixed workload — direct mutations, incremental
// resolves, batched commits and snapshot exports — then reports
// throughput and per-operation latency percentiles.
//
// Usage:
//
//	sesload [-sessions 128] [-duration 3s] [-users 60] [-events 16]
//	        [-intervals 5] [-competing 3] [-k 6] [-seed 1]
//	        [-workers 1] [-resolve-workers 0] [-json BENCH_store.json]
//	        [-durable DIR] [-sync always|interval|none] [-group-commit]
//	        [-cluster URL [-ack-file FILE]] | [-check-acks FILE -cluster URL]
//
// The run has two phases. Warm-up: every session performs its first
// full resolve (the expensive from-scratch solve that builds the
// initial schedule) and all drivers rendezvous at a barrier; these
// resolves are reported separately under "warmup" and never pollute
// the steady-state latency classes. Measurement: the clock starts
// after the barrier and each driver runs the mixed workload until the
// deadline — ~55% single mutations, ~20% resolves, ~15% batches (two
// mutations + the batch's one resolve), ~10% snapshot exports. Pins
// are drawn from the session's committed schedule so the pin set
// always stays feasible. All instance generation is
// seed-deterministic; timings obviously are not.
//
// Latencies are response times as a driver sees them: when sessions
// far outnumber cores (the default: 128 drivers, often 1 CI core),
// the tail of every class includes scheduler run-queue wait — a
// driver can sit preempted for (drivers × timeslice) while the other
// drivers take their turns, so max_us grows linearly with the
// oversubscription factor. The report records drivers_per_core so the
// tail can be read accordingly; p50/p90/p99 are unaffected at the
// default mix because an op rarely spans a preemption.
//
// With -durable the store is opened with a write-ahead log under DIR
// (-sync picks the fsync policy) and every mutation is routed through
// ApplyBatch so it is logged — single mutations then carry a resolve,
// which is the price of the durability contract and shows up in the
// "mutate" latency class. -group-commit turns on WAL group commit so
// concurrent drivers share fsyncs under -sync always. Kill the
// process mid-run (the CI smoke does kill -9) and a sesd -data-dir
// DIR boot recovers every acknowledged session.
//
// With -resolve-workers N > 0, resolves and batches are routed
// through a ses.Pipeline over the store instead of calling it
// directly, exercising the coalescing worker pool under load.
//
// With -cluster URL the drivers speak HTTP to a sesd daemon or a
// sesrouter front instead of an in-process store, retrying transient
// failures (a node being kill -9'd, the router converging on a
// failover) and counting an op only when its 2xx acknowledgement
// arrives. -ack-file records the per-session acknowledged counters;
// a later `sesload -check-acks FILE -cluster URL` asserts the cluster
// still holds at least every acknowledged op — the
// zero-acknowledged-loss check the CI cluster smoke runs after
// killing a node mid-drive.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ses"
	"ses/internal/core"
	"ses/internal/randx"
	"ses/internal/sestest"
	"ses/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesload:", err)
		os.Exit(1)
	}
}

// opClass indexes the latency classes.
const (
	opMutate = iota
	opResolve
	opBatch
	opSnapshot
	numOps
)

var opNames = [numOps]string{"mutate", "resolve", "batch", "snapshot"}

// latencySummary is the reported shape of one op class.
type latencySummary struct {
	Count int     `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// loadStore is the store surface the generator drives; both the
// memory-only and the durable store satisfy it.
type loadStore interface {
	Create(name string, inst *ses.Instance, k int) error
	Get(name string) (*ses.Scheduler, error)
	Snapshot(name string) (*ses.SessionState, error)
	Resolve(ctx context.Context, name string) (*ses.Delta, error)
	ApplyBatch(ctx context.Context, name string, muts []ses.Mutation) (*ses.BatchResult, error)
}

// resolver is the mutate/resolve surface a driver commits through —
// the store itself, or a ses.Pipeline over it with -resolve-workers.
type resolver interface {
	Resolve(ctx context.Context, name string) (*ses.Delta, error)
	ApplyBatch(ctx context.Context, name string, muts []ses.Mutation) (*ses.BatchResult, error)
}

// report is the BENCH_store.json document.
type report struct {
	Sessions       int                       `json:"sessions"`
	Durable        bool                      `json:"durable,omitempty"`
	Sync           string                    `json:"sync,omitempty"`
	GroupCommit    bool                      `json:"group_commit,omitempty"`
	ResolveWorkers int                       `json:"resolve_workers,omitempty"`
	WarmupSec      float64                   `json:"warmup_sec"`
	Warmup         latencySummary            `json:"warmup"`
	DriversPerCore float64                   `json:"drivers_per_core"`
	DurationSec    float64                   `json:"duration_sec"`
	TotalOps       int                       `json:"total_ops"`
	OpsPerSec      float64                   `json:"throughput_ops_per_sec"`
	ResolvedUtil   float64                   `json:"mean_final_utility"`
	Ops            map[string]latencySummary `json:"ops"`
	GoMaxProcs     int                       `json:"gomaxprocs"`
	Users          int                       `json:"users"`
	Events         int                       `json:"events"`
	Intervals      int                       `json:"intervals"`
	K              int                       `json:"k"`
}

// summarize folds a sorted latency sample (seconds) into the reported
// percentile shape.
func summarize(sorted []float64) latencySummary {
	if len(sorted) == 0 {
		return latencySummary{}
	}
	return latencySummary{
		Count: len(sorted),
		P50us: stats.PercentileSorted(sorted, 50) * 1e6,
		P90us: stats.PercentileSorted(sorted, 90) * 1e6,
		P99us: stats.PercentileSorted(sorted, 99) * 1e6,
		MaxUs: sorted[len(sorted)-1] * 1e6,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sesload", flag.ContinueOnError)
	sessions := fs.Int("sessions", 128, "concurrent sessions (one driver goroutine each)")
	duration := fs.Duration("duration", 3*time.Second, "how long to drive the workload")
	users := fs.Int("users", 60, "users per instance")
	events := fs.Int("events", 16, "candidate events per instance")
	intervals := fs.Int("intervals", 5, "intervals per instance")
	competing := fs.Int("competing", 3, "competing events per instance")
	k := fs.Int("k", 6, "schedule-size target")
	seed := fs.Uint64("seed", 1, "instance-generation seed")
	workers := fs.Int("workers", 1, "scoring goroutines per resolve (keep 1 when sessions >> cores)")
	resolveWorkers := fs.Int("resolve-workers", 0, "route resolves/batches through a pipeline with this many workers (0 = direct store calls)")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	durableDir := fs.String("durable", "", "open a durable store with its write-ahead log under this directory")
	syncSpec := fs.String("sync", "always", "WAL sync policy with -durable: always, interval or none")
	groupCommit := fs.Bool("group-commit", false, "enable WAL group commit with -durable -sync always")
	clusterURL := fs.String("cluster", "", "drive a sesd/sesrouter base URL over HTTP instead of an in-process store")
	ackFile := fs.String("ack-file", "", "with -cluster: write per-session acknowledged counters to this file")
	checkAcks := fs.String("check-acks", "", "verify a previous run's ack file against -cluster and exit")
	namePrefix := fs.String("name-prefix", "load", "with -cluster: session name prefix (lets two drive phases coexist)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkAcks != "" {
		return runCheckAcks(*checkAcks, strings.TrimSuffix(*clusterURL, "/"), out)
	}
	if *sessions <= 0 {
		return fmt.Errorf("-sessions must be positive")
	}
	if *clusterURL != "" {
		if *durableDir != "" || *resolveWorkers > 0 {
			return fmt.Errorf("-cluster drives a remote daemon; -durable/-resolve-workers don't apply")
		}
		return runCluster(strings.TrimSuffix(*clusterURL, "/"), *ackFile, *jsonPath, *namePrefix,
			*sessions, *duration, *users, *events, *intervals, *competing, *k, *seed, out)
	}
	if *ackFile != "" {
		return fmt.Errorf("-ack-file only applies with -cluster")
	}

	var st loadStore
	var backend ses.PipelineBackend
	durable := *durableDir != ""
	if !durable {
		// Same foot-gun guard as sesd: a tuned -sync without -durable
		// would silently benchmark the memory-only store.
		strayErr := error(nil)
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "sync":
				strayErr = fmt.Errorf("-sync only applies with -durable")
			case "group-commit":
				strayErr = fmt.Errorf("-group-commit only applies with -durable")
			}
		})
		if strayErr != nil {
			return strayErr
		}
	}
	if durable {
		pol, err := ses.ParseSyncPolicy(*syncSpec)
		if err != nil {
			return err
		}
		d, err := ses.OpenStore(ses.WithDurability(*durableDir), ses.WithSyncPolicy(pol), ses.WithWorkers(*workers),
			ses.WithGroupCommit(ses.GroupCommit{Enabled: *groupCommit}))
		if err != nil {
			return err
		}
		// A clean run closes with a final checkpoint; a kill -9 leaves
		// the log for the next boot to recover, which is the point.
		defer d.Close()
		st, backend = d, d
	} else {
		s := ses.NewStore(ses.WithWorkers(*workers))
		st, backend = s, s
	}
	var rs resolver = st
	if *resolveWorkers > 0 {
		pipe := ses.NewPipeline(backend, ses.WithResolveWorkers(*resolveWorkers))
		defer pipe.Close()
		rs = pipe
	}
	for i := 0; i < *sessions; i++ {
		inst := sestest.Random(sestest.Config{
			Users: *users, Events: *events, Intervals: *intervals,
			Competing: *competing, Seed: *seed + uint64(i),
		})
		if err := st.Create(fmt.Sprintf("load-%d", i), inst, *k); err != nil {
			return err
		}
	}

	results := make([]driveResult, *sessions)
	// Warm-up barrier: every driver finishes its first full resolve
	// (and checks in on warmed) before the measurement clock starts,
	// so the from-scratch solve cost never lands in a steady-state
	// latency class.
	var warmed, wg sync.WaitGroup
	start := make(chan struct{})
	warmStart := time.Now()
	for i := 0; i < *sessions; i++ {
		warmed.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveSession(st, rs, fmt.Sprintf("load-%d", i), i, *seed, *users, *intervals, &warmed, start, *duration, durable)
		}(i)
	}
	warmed.Wait()
	warmupElapsed := time.Since(warmStart)
	close(start) // release all drivers into the timed loop
	measureStart := time.Now()
	wg.Wait()
	elapsed := time.Since(measureStart)

	rep := report{
		Sessions:       *sessions,
		Durable:        durable,
		ResolveWorkers: *resolveWorkers,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Users:          *users,
		Events:         *events,
		Intervals:      *intervals,
		K:              *k,
		Ops:            map[string]latencySummary{},
	}
	if durable {
		rep.Sync = *syncSpec
		rep.GroupCommit = *groupCommit
	}
	var merged [numOps][]float64
	var warm []float64
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("session load-%d: %w", i, results[i].err)
		}
		for c := 0; c < numOps; c++ {
			merged[c] = append(merged[c], results[i].lat[c]...)
		}
		warm = append(warm, results[i].warm)
		rep.ResolvedUtil += results[i].util
	}
	rep.ResolvedUtil /= float64(*sessions)
	rep.DurationSec = elapsed.Seconds()
	rep.WarmupSec = warmupElapsed.Seconds()
	rep.DriversPerCore = float64(*sessions) / float64(runtime.GOMAXPROCS(0))
	sort.Float64s(warm)
	rep.Warmup = summarize(warm)
	for c := 0; c < numOps; c++ {
		lat := merged[c]
		sort.Float64s(lat)
		rep.TotalOps += len(lat)
		if len(lat) == 0 {
			continue
		}
		rep.Ops[opNames[c]] = summarize(lat)
	}
	rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()

	fmt.Fprintf(out, "sesload: %d sessions, %.2fs, %d ops (%.0f ops/sec), mean final Ω = %.2f\n",
		rep.Sessions, rep.DurationSec, rep.TotalOps, rep.OpsPerSec, rep.ResolvedUtil)
	fmt.Fprintf(out, "  warm-up  %7d ops  %.2fs wall  p50 %8.1fµs  max %8.1fµs (excluded from classes below)\n",
		rep.Warmup.Count, rep.WarmupSec, rep.Warmup.P50us, rep.Warmup.MaxUs)
	for c := 0; c < numOps; c++ {
		if s, ok := rep.Ops[opNames[c]]; ok {
			fmt.Fprintf(out, "  %-8s %7d ops  p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs  max %8.1fµs\n",
				opNames[c], s.Count, s.P50us, s.P90us, s.P99us, s.MaxUs)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *jsonPath)
	}
	return nil
}

// driveResult is one driver's contribution to the report: per-class
// steady-state latencies, the warm-up resolve's latency (reported
// separately), and the session's final utility.
type driveResult struct {
	lat  [numOps][]float64 // seconds
	warm float64           // warm-up resolve, seconds
	util float64
	err  error
}

// driveSession warms one session up (first full resolve, timed into
// warm), checks in on warmed, waits for the start barrier, then runs
// the mixed workload for dur. It is the session's only driver, so
// pins drawn from the committed schedule stay feasible and
// cancellations can avoid pinned events without races. With durable
// set, every mutation goes through ApplyBatch so the write-ahead log
// sees it; otherwise mutations are applied directly to the scheduler.
func driveSession(st loadStore, rs resolver, name string, idx int, seed uint64, users, intervals int,
	warmed *sync.WaitGroup, start <-chan struct{}, dur time.Duration, durable bool) (res driveResult) {
	ctx := context.Background()
	src := randx.Derive(seed+uint64(idx), "sesload")
	sched, err := st.Get(name)
	if err != nil {
		res.err = err
		warmed.Done()
		return
	}
	_, _, events := sched.Dims()
	pinned := map[int]int{}        // event -> interval+1
	cancelled := map[int]bool{}    // events withdrawn by this driver
	forbidden := map[[2]int]bool{} // pairs excluded by this driver
	var added []int                // loadgen-added events, safe to cancel

	observe := func(c int, f func() error) bool {
		t0 := time.Now()
		err := f()
		res.lat[c] = append(res.lat[c], time.Since(t0).Seconds())
		if err != nil {
			res.err = err
			return false
		}
		return true
	}

	// apply routes one mutation through the durable ApplyBatch (so it
	// reaches the log) or directly onto the scheduler, returning the
	// assigned id for add mutations (-1 otherwise).
	apply := func(m ses.Mutation) (int, error) {
		if !durable {
			return m.ApplyTo(sched)
		}
		r, err := rs.ApplyBatch(ctx, name, []ses.Mutation{m})
		if err != nil {
			return -1, err
		}
		if len(r.EventIDs) > 0 {
			return r.EventIDs[0], nil
		}
		if len(r.CompetingIDs) > 0 {
			return r.CompetingIDs[0], nil
		}
		return -1, nil
	}

	// Warm-up: one full resolve so schedules exist for pin sampling.
	// This is the expensive from-scratch solve — timed into the warm
	// slot, never into the steady-state resolve class.
	t0 := time.Now()
	_, err = rs.Resolve(ctx, name)
	res.warm = time.Since(t0).Seconds()
	warmed.Done()
	if err != nil {
		res.err = err
		return
	}
	<-start
	deadline := time.Now().Add(dur)

	for time.Now().Before(deadline) {
		switch r := src.IntN(20); {
		case r < 11: // single mutation
			ok := observe(opMutate, func() error {
				switch src.IntN(6) {
				case 0:
					_, err := apply(ses.UpdateInterestOp(src.IntN(users), src.IntN(events), src.Range(0, 1)))
					return err
				case 1:
					_, err := apply(ses.AddCompetingOp(core.CompetingEvent{Interval: src.IntN(intervals)},
						map[int]float64{src.IntN(users): src.Range(0.1, 1)}))
					return err
				case 2:
					id, err := apply(ses.AddEventOp(core.Event{
						Location: src.IntN(4), Required: src.Range(0.5, 2),
						Name: fmt.Sprintf("%s-extra-%d", name, events),
					}, map[int]float64{src.IntN(users): src.Range(0.1, 1)}))
					if err == nil {
						added = append(added, id)
						events++
					}
					return err
				case 3:
					if len(added) > 0 && src.Bool(0.5) {
						e := added[src.IntN(len(added))]
						if cancelled[e] {
							return nil // already withdrawn; cheap no-op
						}
						if _, err := apply(ses.CancelEventOp(e)); err != nil {
							return err
						}
						cancelled[e] = true
						delete(pinned, e) // CancelEvent drops the pin
						return nil
					}
					e, tt := src.IntN(events), src.IntN(intervals)
					if pinned[e] == tt+1 {
						return nil // forbidding a pinned pair is rejected by design
					}
					if _, err := apply(ses.ForbidOp(e, tt)); err != nil {
						return err
					}
					forbidden[[2]int{e, tt}] = true
					return nil
				case 4:
					// Pin a committed assignment: feasible by
					// construction (it was part of one feasible
					// schedule) — unless this driver has since
					// cancelled the event or forbidden the pair.
					cur := sched.Schedule()
					if len(cur) == 0 {
						return nil
					}
					a := cur[src.IntN(len(cur))]
					if cancelled[a.Event] || forbidden[[2]int{a.Event, a.Interval}] {
						return nil
					}
					if _, err := apply(ses.PinOp(a.Event, a.Interval)); err != nil {
						return err
					}
					pinned[a.Event] = a.Interval + 1
					return nil
				default:
					e := src.IntN(events)
					if _, err := apply(ses.UnpinOp(e)); err != nil {
						return err
					}
					delete(pinned, e)
					return nil
				}
			})
			if !ok {
				return
			}
		case r < 15: // incremental resolve
			if !observe(opResolve, func() error {
				_, err := rs.Resolve(ctx, name)
				return err
			}) {
				return
			}
		case r < 18: // batch: two mutations + one resolve
			if !observe(opBatch, func() error {
				_, err := rs.ApplyBatch(ctx, name, []ses.Mutation{
					ses.UpdateInterestOp(src.IntN(users), src.IntN(events), src.Range(0, 1)),
					ses.AddCompetingOp(core.CompetingEvent{Interval: src.IntN(intervals)},
						map[int]float64{src.IntN(users): src.Range(0.1, 1)}),
				})
				return err
			}) {
				return
			}
		default: // snapshot export
			if !observe(opSnapshot, func() error {
				_, err := st.Snapshot(name)
				return err
			}) {
				return
			}
		}
	}

	// Final commit so the reported utility reflects all mutations.
	if !observe(opResolve, func() error {
		d, err := rs.Resolve(ctx, name)
		if err == nil {
			res.util = d.Utility
		}
		return err
	}) {
		return
	}
	return
}
