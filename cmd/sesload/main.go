// Command sesload load-tests the concurrent serving layer: it creates
// N sessions in one ses.Store and drives every session from its own
// goroutine with a mixed workload — direct mutations, incremental
// resolves, batched commits and snapshot exports — then reports
// throughput and per-operation latency percentiles.
//
// Usage:
//
//	sesload [-sessions 128] [-duration 3s] [-users 60] [-events 16]
//	        [-intervals 5] [-competing 3] [-k 6] [-seed 1]
//	        [-workers 1] [-json BENCH_store.json]
//	        [-durable DIR] [-sync always|interval|none]
//
// The workload mix per iteration: ~55% single mutations, ~20%
// resolves, ~15% batches (two mutations + the batch's one resolve),
// ~10% snapshot exports. Pins are drawn from the session's committed
// schedule so the pin set always stays feasible. All instance
// generation is seed-deterministic; timings obviously are not.
//
// With -durable the store is opened with a write-ahead log under DIR
// (-sync picks the fsync policy) and every mutation is routed through
// ApplyBatch so it is logged — single mutations then carry a resolve,
// which is the price of the durability contract and shows up in the
// "mutate" latency class. Kill the process mid-run (the CI smoke does
// kill -9) and a sesd -data-dir DIR boot recovers every acknowledged
// session.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ses"
	"ses/internal/core"
	"ses/internal/randx"
	"ses/internal/sestest"
	"ses/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesload:", err)
		os.Exit(1)
	}
}

// opClass indexes the latency classes.
const (
	opMutate = iota
	opResolve
	opBatch
	opSnapshot
	numOps
)

var opNames = [numOps]string{"mutate", "resolve", "batch", "snapshot"}

// latencySummary is the reported shape of one op class.
type latencySummary struct {
	Count int     `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// loadStore is the store surface the generator drives; both the
// memory-only and the durable store satisfy it.
type loadStore interface {
	Create(name string, inst *ses.Instance, k int) error
	Get(name string) (*ses.Scheduler, error)
	Snapshot(name string) (*ses.SessionState, error)
	Resolve(ctx context.Context, name string) (*ses.Delta, error)
	ApplyBatch(ctx context.Context, name string, muts []ses.Mutation) (*ses.BatchResult, error)
}

// report is the BENCH_store.json document.
type report struct {
	Sessions     int                       `json:"sessions"`
	Durable      bool                      `json:"durable,omitempty"`
	Sync         string                    `json:"sync,omitempty"`
	DurationSec  float64                   `json:"duration_sec"`
	TotalOps     int                       `json:"total_ops"`
	OpsPerSec    float64                   `json:"throughput_ops_per_sec"`
	ResolvedUtil float64                   `json:"mean_final_utility"`
	Ops          map[string]latencySummary `json:"ops"`
	GoMaxProcs   int                       `json:"gomaxprocs"`
	Users        int                       `json:"users"`
	Events       int                       `json:"events"`
	Intervals    int                       `json:"intervals"`
	K            int                       `json:"k"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sesload", flag.ContinueOnError)
	sessions := fs.Int("sessions", 128, "concurrent sessions (one driver goroutine each)")
	duration := fs.Duration("duration", 3*time.Second, "how long to drive the workload")
	users := fs.Int("users", 60, "users per instance")
	events := fs.Int("events", 16, "candidate events per instance")
	intervals := fs.Int("intervals", 5, "intervals per instance")
	competing := fs.Int("competing", 3, "competing events per instance")
	k := fs.Int("k", 6, "schedule-size target")
	seed := fs.Uint64("seed", 1, "instance-generation seed")
	workers := fs.Int("workers", 1, "scoring goroutines per resolve (keep 1 when sessions >> cores)")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	durableDir := fs.String("durable", "", "open a durable store with its write-ahead log under this directory")
	syncSpec := fs.String("sync", "always", "WAL sync policy with -durable: always, interval or none")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessions <= 0 {
		return fmt.Errorf("-sessions must be positive")
	}

	var st loadStore
	durable := *durableDir != ""
	if !durable {
		// Same foot-gun guard as sesd: a tuned -sync without -durable
		// would silently benchmark the memory-only store.
		strayErr := error(nil)
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "sync" {
				strayErr = fmt.Errorf("-sync only applies with -durable")
			}
		})
		if strayErr != nil {
			return strayErr
		}
	}
	if durable {
		pol, err := ses.ParseSyncPolicy(*syncSpec)
		if err != nil {
			return err
		}
		d, err := ses.OpenStore(ses.WithDurability(*durableDir), ses.WithSyncPolicy(pol), ses.WithWorkers(*workers))
		if err != nil {
			return err
		}
		// A clean run closes with a final checkpoint; a kill -9 leaves
		// the log for the next boot to recover, which is the point.
		defer d.Close()
		st = d
	} else {
		st = ses.NewStore(ses.WithWorkers(*workers))
	}
	for i := 0; i < *sessions; i++ {
		inst := sestest.Random(sestest.Config{
			Users: *users, Events: *events, Intervals: *intervals,
			Competing: *competing, Seed: *seed + uint64(i),
		})
		if err := st.Create(fmt.Sprintf("load-%d", i), inst, *k); err != nil {
			return err
		}
	}

	type result struct {
		lat  [numOps][]float64 // seconds
		util float64
		err  error
	}
	results := make([]result, *sessions)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveSession(st, fmt.Sprintf("load-%d", i), i, *seed, *users, *intervals, deadline, durable)
		}(i)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Sessions:   *sessions,
		Durable:    durable,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Users:      *users,
		Events:     *events,
		Intervals:  *intervals,
		K:          *k,
		Ops:        map[string]latencySummary{},
	}
	if durable {
		rep.Sync = *syncSpec
	}
	var merged [numOps][]float64
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("session load-%d: %w", i, results[i].err)
		}
		for c := 0; c < numOps; c++ {
			merged[c] = append(merged[c], results[i].lat[c]...)
		}
		rep.ResolvedUtil += results[i].util
	}
	rep.ResolvedUtil /= float64(*sessions)
	rep.DurationSec = elapsed.Seconds()
	for c := 0; c < numOps; c++ {
		lat := merged[c]
		sort.Float64s(lat)
		rep.TotalOps += len(lat)
		if len(lat) == 0 {
			continue
		}
		rep.Ops[opNames[c]] = latencySummary{
			Count: len(lat),
			P50us: stats.PercentileSorted(lat, 50) * 1e6,
			P90us: stats.PercentileSorted(lat, 90) * 1e6,
			P99us: stats.PercentileSorted(lat, 99) * 1e6,
			MaxUs: lat[len(lat)-1] * 1e6,
		}
	}
	rep.OpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()

	fmt.Fprintf(out, "sesload: %d sessions, %.2fs, %d ops (%.0f ops/sec), mean final Ω = %.2f\n",
		rep.Sessions, rep.DurationSec, rep.TotalOps, rep.OpsPerSec, rep.ResolvedUtil)
	for c := 0; c < numOps; c++ {
		if s, ok := rep.Ops[opNames[c]]; ok {
			fmt.Fprintf(out, "  %-8s %7d ops  p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs  max %8.1fµs\n",
				opNames[c], s.Count, s.P50us, s.P90us, s.P99us, s.MaxUs)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *jsonPath)
	}
	return nil
}

// driveSession runs the mixed workload against one session until the
// deadline. It is the session's only driver, so pins drawn from the
// committed schedule stay feasible and cancellations can avoid pinned
// events without races. With durable set, every mutation goes through
// ApplyBatch so the write-ahead log sees it; otherwise mutations are
// applied directly to the scheduler.
func driveSession(st loadStore, name string, idx int, seed uint64, users, intervals int, deadline time.Time, durable bool) (res struct {
	lat  [numOps][]float64
	util float64
	err  error
}) {
	ctx := context.Background()
	src := randx.Derive(seed+uint64(idx), "sesload")
	sched, err := st.Get(name)
	if err != nil {
		res.err = err
		return
	}
	_, _, events := sched.Dims()
	pinned := map[int]int{}        // event -> interval+1
	cancelled := map[int]bool{}    // events withdrawn by this driver
	forbidden := map[[2]int]bool{} // pairs excluded by this driver
	var added []int                // loadgen-added events, safe to cancel

	observe := func(c int, f func() error) bool {
		t0 := time.Now()
		err := f()
		res.lat[c] = append(res.lat[c], time.Since(t0).Seconds())
		if err != nil {
			res.err = err
			return false
		}
		return true
	}

	// apply routes one mutation through the durable ApplyBatch (so it
	// reaches the log) or directly onto the scheduler, returning the
	// assigned id for add mutations (-1 otherwise).
	apply := func(m ses.Mutation) (int, error) {
		if !durable {
			return m.ApplyTo(sched)
		}
		r, err := st.ApplyBatch(ctx, name, []ses.Mutation{m})
		if err != nil {
			return -1, err
		}
		if len(r.EventIDs) > 0 {
			return r.EventIDs[0], nil
		}
		if len(r.CompetingIDs) > 0 {
			return r.CompetingIDs[0], nil
		}
		return -1, nil
	}

	// Prime: one full resolve so schedules exist for pin sampling.
	if !observe(opResolve, func() error {
		_, err := st.Resolve(ctx, name)
		return err
	}) {
		return
	}

	for time.Now().Before(deadline) {
		switch r := src.IntN(20); {
		case r < 11: // single mutation
			ok := observe(opMutate, func() error {
				switch src.IntN(6) {
				case 0:
					_, err := apply(ses.UpdateInterestOp(src.IntN(users), src.IntN(events), src.Range(0, 1)))
					return err
				case 1:
					_, err := apply(ses.AddCompetingOp(core.CompetingEvent{Interval: src.IntN(intervals)},
						map[int]float64{src.IntN(users): src.Range(0.1, 1)}))
					return err
				case 2:
					id, err := apply(ses.AddEventOp(core.Event{
						Location: src.IntN(4), Required: src.Range(0.5, 2),
						Name: fmt.Sprintf("%s-extra-%d", name, events),
					}, map[int]float64{src.IntN(users): src.Range(0.1, 1)}))
					if err == nil {
						added = append(added, id)
						events++
					}
					return err
				case 3:
					if len(added) > 0 && src.Bool(0.5) {
						e := added[src.IntN(len(added))]
						if cancelled[e] {
							return nil // already withdrawn; cheap no-op
						}
						if _, err := apply(ses.CancelEventOp(e)); err != nil {
							return err
						}
						cancelled[e] = true
						delete(pinned, e) // CancelEvent drops the pin
						return nil
					}
					e, tt := src.IntN(events), src.IntN(intervals)
					if pinned[e] == tt+1 {
						return nil // forbidding a pinned pair is rejected by design
					}
					if _, err := apply(ses.ForbidOp(e, tt)); err != nil {
						return err
					}
					forbidden[[2]int{e, tt}] = true
					return nil
				case 4:
					// Pin a committed assignment: feasible by
					// construction (it was part of one feasible
					// schedule) — unless this driver has since
					// cancelled the event or forbidden the pair.
					cur := sched.Schedule()
					if len(cur) == 0 {
						return nil
					}
					a := cur[src.IntN(len(cur))]
					if cancelled[a.Event] || forbidden[[2]int{a.Event, a.Interval}] {
						return nil
					}
					if _, err := apply(ses.PinOp(a.Event, a.Interval)); err != nil {
						return err
					}
					pinned[a.Event] = a.Interval + 1
					return nil
				default:
					e := src.IntN(events)
					if _, err := apply(ses.UnpinOp(e)); err != nil {
						return err
					}
					delete(pinned, e)
					return nil
				}
			})
			if !ok {
				return
			}
		case r < 15: // incremental resolve
			if !observe(opResolve, func() error {
				_, err := st.Resolve(ctx, name)
				return err
			}) {
				return
			}
		case r < 18: // batch: two mutations + one resolve
			if !observe(opBatch, func() error {
				_, err := st.ApplyBatch(ctx, name, []ses.Mutation{
					ses.UpdateInterestOp(src.IntN(users), src.IntN(events), src.Range(0, 1)),
					ses.AddCompetingOp(core.CompetingEvent{Interval: src.IntN(intervals)},
						map[int]float64{src.IntN(users): src.Range(0.1, 1)}),
				})
				return err
			}) {
				return
			}
		default: // snapshot export
			if !observe(opSnapshot, func() error {
				_, err := st.Snapshot(name)
				return err
			}) {
				return
			}
		}
	}

	// Final commit so the reported utility reflects all mutations.
	if !observe(opResolve, func() error {
		d, err := st.Resolve(ctx, name)
		if err == nil {
			res.util = d.Utility
		}
		return err
	}) {
		return
	}
	return
}
