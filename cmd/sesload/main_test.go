package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-sessions", "6", "-duration", "300ms",
		"-users", "20", "-events", "8", "-intervals", "4", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"6 sessions", "ops/sec", "mutate", "resolve", "batch", "snapshot", "report written"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 6 || rep.TotalOps == 0 || rep.OpsPerSec <= 0 {
		t.Fatalf("report implausible: %+v", rep)
	}
	for _, class := range []string{"mutate", "resolve", "batch", "snapshot"} {
		s, ok := rep.Ops[class]
		if !ok || s.Count == 0 {
			t.Errorf("class %s missing from report: %+v", class, rep.Ops)
			continue
		}
		if s.P50us <= 0 || s.P99us < s.P50us || s.MaxUs < s.P99us {
			t.Errorf("class %s latency summary inconsistent: %+v", class, s)
		}
	}
	if rep.ResolvedUtil <= 0 {
		t.Errorf("mean final utility %v, want > 0", rep.ResolvedUtil)
	}
	// Warm-up is reported separately and must never pollute the
	// steady-state classes: every driver contributes exactly one
	// warm-up resolve.
	if rep.Warmup.Count != 6 {
		t.Errorf("warmup count %d, want 6", rep.Warmup.Count)
	}
	if rep.WarmupSec <= 0 {
		t.Errorf("warmup_sec %v, want > 0", rep.WarmupSec)
	}
	if rep.Warmup.MaxUs <= 0 || rep.Warmup.MaxUs < rep.Warmup.P50us {
		t.Errorf("warmup summary inconsistent: %+v", rep.Warmup)
	}
}

// TestRunThroughPipeline drives the same workload with resolves and
// batches routed through a ses.Pipeline worker pool.
func TestRunThroughPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-sessions", "4", "-duration", "150ms", "-resolve-workers", "2",
		"-users", "15", "-events", "6", "-intervals", "3", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ResolveWorkers != 2 || rep.TotalOps == 0 || rep.ResolvedUtil <= 0 {
		t.Fatalf("pipeline report implausible: %+v", rep)
	}
}

// TestRunDurableGroupCommit exercises the durable path with WAL group
// commit on: concurrent drivers share fsyncs and the run must still
// close cleanly with a final checkpoint.
func TestRunDurableGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-sessions", "4", "-duration", "150ms",
		"-users", "15", "-events", "6", "-intervals", "3",
		"-durable", dir, "-sync", "always", "-group-commit",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warm-up") {
		t.Errorf("output missing warm-up line:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-sessions", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsSyncWithoutDurable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sessions", "1", "-duration", "10ms", "-sync", "none"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-durable") {
		t.Errorf("stray -sync: %v", err)
	}
	if err := run([]string{"-sessions", "1", "-duration", "10ms", "-group-commit"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-durable") {
		t.Errorf("stray -group-commit: %v", err)
	}
}
