package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-sessions", "6", "-duration", "300ms",
		"-users", "20", "-events", "8", "-intervals", "4", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"6 sessions", "ops/sec", "mutate", "resolve", "batch", "snapshot", "report written"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 6 || rep.TotalOps == 0 || rep.OpsPerSec <= 0 {
		t.Fatalf("report implausible: %+v", rep)
	}
	for _, class := range []string{"mutate", "resolve", "batch", "snapshot"} {
		s, ok := rep.Ops[class]
		if !ok || s.Count == 0 {
			t.Errorf("class %s missing from report: %+v", class, rep.Ops)
			continue
		}
		if s.P50us <= 0 || s.P99us < s.P50us || s.MaxUs < s.P99us {
			t.Errorf("class %s latency summary inconsistent: %+v", class, s)
		}
	}
	if rep.ResolvedUtil <= 0 {
		t.Errorf("mean final utility %v, want > 0", rep.ResolvedUtil)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-sessions", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsSyncWithoutDurable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sessions", "1", "-duration", "10ms", "-sync", "none"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-durable") {
		t.Errorf("stray -sync: %v", err)
	}
}
