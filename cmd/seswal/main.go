// Command seswal inspects the write-ahead log a durable session
// store (ses.OpenStore, sesd -data-dir) leaves on disk — offline,
// read-only, without starting a daemon.
//
// Usage:
//
//	seswal ls     DIR            list shards: checkpoint, segments, record counts
//	seswal verify DIR            parse everything; report torn tails and corruption
//	seswal dump   [-full] DIR    print records as JSON lines (-full embeds snapshots)
//	seswal stats  [-metrics URL] DIR
//	                             aggregate record/segment/byte accounting; with
//	                             -metrics, the live daemon's append/fsync counters
//	                             (records per fsync — group-commit amortization)
//	                             and, when the daemon replicates, the replication
//	                             section (records shipped/applied, follower lag)
//	seswal tail   [-shard N] [-from SEQ:OFF] [-n N] [-full] DIR
//	                             follow the log live, printing records as they
//	                             commit (the same stream a cluster follower
//	                             applies); -from resumes a shard from a cursor,
//	                             -n exits after N records
//
// DIR is the store's data directory (the one holding shard-NN
// subdirectories). Exit status: 0 when every record parses (torn
// tails at segment ends are reported but are legitimate crash
// artifacts, not corruption), 1 when a record or checkpoint fails to
// decode.
//
// Fsync counts are process-lifetime counters, not on-disk state (a
// group-committed log is frame-for-frame identical to a
// single-append one — that is the durability contract), so seswal
// stats reports the on-disk shape offline and fetches the live
// amortization from a running sesd's /v1/metrics when -metrics is
// given.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ses/internal/cluster"
	"ses/internal/store"
	"ses/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seswal:", err)
		os.Exit(1)
	}
}

var shardDirRe = regexp.MustCompile(`^shard-(\d\d)$`)

// shardLogs finds the shard log directories under a data dir, sorted
// by shard index.
func shardLogs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var shards []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m := shardDirRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		shards = append(shards, n)
	}
	sort.Ints(shards)
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shard-NN directories under %s (is this a sesd -data-dir?)", dir)
	}
	return shards, nil
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: seswal <ls|verify|dump> [flags] DIR")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("seswal "+verb, flag.ContinueOnError)
	full := fs.Bool("full", false, "dump/tail: embed full session snapshots instead of summaries")
	metricsURL := fs.String("metrics", "", "stats: fetch live append/fsync counters from this sesd base URL or /v1/metrics endpoint")
	tailShard := fs.Int("shard", -1, "tail: follow only this shard (default: all shards)")
	tailFrom := fs.String("from", "", "tail: resume cursor SEQ:OFF (requires -shard)")
	tailCount := fs.Int("n", 0, "tail: exit after N records (0 = follow forever)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: seswal %s [flags] DIR", verb)
	}
	dir := fs.Arg(0)
	switch verb {
	case "ls":
		return runLs(dir, out)
	case "verify":
		return runVerify(dir, out)
	case "dump":
		return runDump(dir, *full, out)
	case "stats":
		return runStats(dir, *metricsURL, out)
	case "tail":
		return runTail(dir, *tailShard, *tailFrom, *tailCount, *full, out)
	default:
		return fmt.Errorf("unknown command %q (want ls, verify, dump, stats or tail)", verb)
	}
}

// openShard opens one shard's log read-only.
func openShard(dir string, shard int) (*wal.Log, error) {
	return wal.Open(filepath.Join(dir, fmt.Sprintf("shard-%02d", shard)), wal.Options{})
}

func runLs(dir string, out io.Writer) error {
	shards, err := shardLogs(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-8s %-26s %-10s %-10s %s\n", "shard", "checkpoint", "segments", "records", "log bytes")
	var totalRecords, totalSessions int
	for _, s := range shards {
		l, err := openShard(dir, s)
		if err != nil {
			return err
		}
		ckpt := "-"
		if data := l.Checkpoint(); data != nil {
			entries, err := store.DecodeWALCheckpoint(data)
			if err != nil {
				ckpt = fmt.Sprintf("INVALID (%v)", err)
			} else {
				ckpt = fmt.Sprintf("seq %d, %d sessions", l.CheckpointSeq(), len(entries))
				totalSessions += len(entries)
			}
		}
		var bytes int64
		segs := l.Segments()
		for _, sg := range segs {
			bytes += sg.Bytes
		}
		records := 0
		rep, err := l.Replay(func(wal.Record) error { records++; return nil })
		if err != nil {
			l.Close()
			return err
		}
		totalRecords += records
		note := ""
		if len(rep.Truncations) > 0 {
			note = fmt.Sprintf("  (torn tail at seg %d offset %d)", rep.Truncations[0].Seq, rep.Truncations[0].Offset)
		}
		fmt.Fprintf(out, "%-8d %-26s %-10d %-10d %d%s\n", s, ckpt, len(segs), records, bytes, note)
		l.Close()
	}
	fmt.Fprintf(out, "total: %d shard logs, %d checkpointed sessions, %d records to replay\n",
		len(shards), totalSessions, totalRecords)
	return nil
}

func runVerify(dir string, out io.Writer) error {
	shards, err := shardLogs(dir)
	if err != nil {
		return err
	}
	var records, torn, bad int
	for _, s := range shards {
		l, err := openShard(dir, s)
		if err != nil {
			// A corrupt checkpoint refuses to open; that is corruption.
			fmt.Fprintf(out, "shard %02d: %v\n", s, err)
			bad++
			continue
		}
		if data := l.Checkpoint(); data != nil {
			if entries, err := store.DecodeWALCheckpoint(data); err != nil {
				fmt.Fprintf(out, "shard %02d: checkpoint payload corrupt: %v\n", s, err)
				bad++
			} else {
				for _, e := range entries {
					if _, err := e.Snapshot.State(); err != nil {
						fmt.Fprintf(out, "shard %02d: checkpoint session %q invalid: %v\n", s, e.Name, err)
						bad++
					}
				}
			}
		}
		rep, err := l.Replay(func(r wal.Record) error {
			records++
			if _, derr := store.DecodeWALRecord(r.Payload); derr != nil {
				fmt.Fprintf(out, "shard %02d: seg %d offset %d: CRC-clean record fails to decode: %v\n",
					s, r.Seq, r.Offset, derr)
				bad++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(out, "shard %02d: %v\n", s, err)
			bad++
			l.Close()
			continue
		}
		for _, tr := range rep.Truncations {
			fmt.Fprintf(out, "shard %02d: seg %d truncated at offset %d (%s) — torn tail, records beyond it were never acknowledged\n",
				s, tr.Seq, tr.Offset, tr.Reason)
			torn++
		}
		l.Close()
	}
	fmt.Fprintf(out, "verified %d records across %d shards: %d torn tail(s), %d corrupt\n",
		records, len(shards), torn, bad)
	if bad > 0 {
		return fmt.Errorf("%d corrupt record(s)/checkpoint(s)", bad)
	}
	return nil
}

// runStats aggregates the on-disk shape of the log (records by kind,
// segments, bytes, checkpoint weight) and, when metricsURL names a
// running sesd, the live append/fsync counters that show the
// group-commit amortization.
func runStats(dir, metricsURL string, out io.Writer) error {
	shards, err := shardLogs(dir)
	if err != nil {
		return err
	}
	var (
		totSegs, totRecords, activeShards, ckptSessions int
		totBytes, ckptBytes                             int64
		kinds                                           = map[string]int{}
	)
	for _, s := range shards {
		l, err := openShard(dir, s)
		if err != nil {
			return err
		}
		segs := l.Segments()
		for _, sg := range segs {
			totBytes += sg.Bytes
		}
		totSegs += len(segs)
		if data := l.Checkpoint(); data != nil {
			ckptBytes += int64(len(data))
			if entries, err := store.DecodeWALCheckpoint(data); err == nil {
				ckptSessions += len(entries)
			}
		}
		records := 0
		_, rerr := l.Replay(func(r wal.Record) error {
			records++
			if rec, err := store.DecodeWALRecord(r.Payload); err == nil {
				kinds[rec.Kind]++
			}
			return nil
		})
		l.Close()
		if rerr != nil {
			return fmt.Errorf("shard %02d: %w", s, rerr)
		}
		totRecords += records
		if records > 0 {
			activeShards++
		}
	}
	fmt.Fprintf(out, "shards:       %d (%d with records to replay)\n", len(shards), activeShards)
	fmt.Fprintf(out, "segments:     %d, %d bytes\n", totSegs, totBytes)
	fmt.Fprintf(out, "checkpoints:  %d sessions, %d bytes\n", ckptSessions, ckptBytes)
	fmt.Fprintf(out, "records:      %d", totRecords)
	if totRecords > 0 {
		fmt.Fprintf(out, " (%.0f bytes/record)", float64(totBytes)/float64(totRecords))
	}
	fmt.Fprintln(out)
	for _, kind := range sortedKeys(kinds) {
		fmt.Fprintf(out, "  %-11s %d\n", kind, kinds[kind])
	}

	if metricsURL == "" {
		fmt.Fprintln(out, "fsyncs:       process-lifetime counters, not on-disk state; point -metrics at a running sesd for records-per-fsync")
		return nil
	}
	ws, rep, err := fetchWALMetrics(metricsURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "live appends: %d over %d fsyncs (%.1f records/fsync)\n",
		ws.Appends, ws.Fsyncs, ws.RecordsPerFsync)
	if ws.Batches > 0 {
		fmt.Fprintf(out, "group commit: %d batches covering %d records (%.1f records/batch)\n",
			ws.Batches, ws.BatchedRecords, float64(ws.BatchedRecords)/float64(ws.Batches))
	} else {
		fmt.Fprintln(out, "group commit: no batches committed (disabled, or no concurrent appenders yet)")
	}
	if rep != nil {
		fmt.Fprintf(out, "replication:  node %s following %s; %d streams out\n",
			rep.NodeID, strings.Join(rep.Peers, ","), rep.ActiveStreams)
		fmt.Fprintf(out, "  shipped:    %d records, %d bytes\n", rep.RecordsShipped, rep.BytesShipped)
		fmt.Fprintf(out, "  applied:    %d records, %d bytes\n", rep.RecordsApplied, rep.BytesApplied)
		fmt.Fprintf(out, "  lag:        %d records, %d bytes behind the primaries\n",
			rep.FollowerLagRecords, rep.FollowerLagBytes)
		if rep.LastFailoverUnixMS > 0 {
			fmt.Fprintf(out, "  failover:   promoted %d sessions, last at unix ms %d\n",
				rep.PromotedSessions, rep.LastFailoverUnixMS)
		}
	}
	return nil
}

// liveWALMetrics is the wal section of sesd's /v1/metrics.
type liveWALMetrics struct {
	Appends         uint64  `json:"appends"`
	Fsyncs          uint64  `json:"fsyncs"`
	Batches         uint64  `json:"batches"`
	BatchedRecords  uint64  `json:"batched_records"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
}

// fetchWALMetrics pulls the wal counters — and the replication
// section, when the daemon is clustered — from a sesd metrics
// endpoint; url may be the daemon base URL or the full /v1/metrics
// path.
func fetchWALMetrics(url string) (*liveWALMetrics, *cluster.Metrics, error) {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/v1/metrics") {
		url = strings.TrimSuffix(url, "/") + "/v1/metrics"
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc struct {
		WAL         *liveWALMetrics  `json:"wal"`
		Replication *cluster.Metrics `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("GET %s: %w", url, err)
	}
	if doc.WAL == nil {
		return nil, nil, fmt.Errorf("GET %s: no wal section (daemon running without -data-dir?)", url)
	}
	return doc.WAL, doc.Replication, nil
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runTail follows the log live: one wal.Tailer per shard delivers
// records as their appends land, exactly the stream a cluster
// follower consumes, printed as dump-format JSON lines with the
// record's post-apply cursor attached. Ctrl-C (or -n) ends the tail.
func runTail(dir string, shard int, from string, count int, full bool, out io.Writer) error {
	shards, err := shardLogs(dir)
	if err != nil {
		return err
	}
	if shard >= 0 {
		if shard >= store.NumShards {
			return fmt.Errorf("shard %d out of range [0,%d)", shard, store.NumShards)
		}
		shards = []int{shard}
	}
	var cur wal.Cursor
	if from != "" {
		if shard < 0 {
			return fmt.Errorf("-from needs -shard: a cursor names a position in one shard's log")
		}
		if cur, err = wal.ParseCursor(from); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	enc := json.NewEncoder(out)
	var mu sync.Mutex
	emitted := 0
	emit := func(line dumpLine) error {
		mu.Lock()
		defer mu.Unlock()
		if count > 0 && emitted >= count {
			return nil
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		emitted++
		if count > 0 && emitted >= count {
			cancel()
		}
		return nil
	}

	errs := make(chan error, len(shards))
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s int, from wal.Cursor) {
			defer wg.Done()
			t := wal.NewTailer(filepath.Join(dir, fmt.Sprintf("shard-%02d", s)), from, wal.TailerOptions{})
			defer t.Close()
			for {
				r, err := t.Next(ctx)
				if err != nil {
					if ctx.Err() == nil {
						errs <- fmt.Errorf("shard %02d: %w", s, err)
						cancel()
					}
					return
				}
				rec, err := store.DecodeWALRecord(r.Payload)
				if err != nil {
					errs <- fmt.Errorf("shard %02d seg %d offset %d: %w", s, r.Seq, r.Offset, err)
					cancel()
					return
				}
				line := dumpLine{Shard: s, Seq: r.Seq, Offset: r.Offset, Kind: rec.Kind, Name: rec.Name, Replace: rec.Replace, Cursor: wal.Cursor{Seq: r.Seq, Off: r.End}.String()}
				if full {
					line.Record = rec
				} else if rec.Snapshot != nil {
					line.K = rec.Snapshot.K
					line.Objective = rec.Snapshot.Objective
					line.Events = len(rec.Snapshot.Instance.Events)
				}
				if err := emit(line); err != nil {
					errs <- err
					cancel()
					return
				}
			}
		}(s, cur)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// dumpLine is one JSON line of seswal dump.
type dumpLine struct {
	Shard  int    `json:"shard"`
	Seq    uint64 `json:"seq,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	// Cursor is the record's post-apply cursor ("seq:off"), printed by
	// tail — the resume point for -from and the position a replication
	// follower holds after applying this record.
	Cursor string `json:"cursor,omitempty"`
	// Compact summaries (default mode).
	K         int     `json:"k,omitempty"`
	Objective string  `json:"objective,omitempty"`
	Events    int     `json:"events,omitempty"`
	Muts      int     `json:"muts,omitempty"`
	Ops       string  `json:"ops,omitempty"`
	Committed bool    `json:"committed,omitempty"`
	Scheduled int     `json:"scheduled,omitempty"`
	Utility   float64 `json:"utility,omitempty"`
	Stopped   string  `json:"stopped,omitempty"`
	Replace   bool    `json:"replace,omitempty"`
	// Full mode payloads.
	Record     *store.WALRecord          `json:"record,omitempty"`
	Checkpoint *store.WALCheckpointEntry `json:"checkpoint,omitempty"`
}

func runDump(dir string, full bool, out io.Writer) error {
	shards, err := shardLogs(dir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	for _, s := range shards {
		l, err := openShard(dir, s)
		if err != nil {
			return err
		}
		if data := l.Checkpoint(); data != nil {
			entries, err := store.DecodeWALCheckpoint(data)
			if err != nil {
				l.Close()
				return fmt.Errorf("shard %02d checkpoint: %w", s, err)
			}
			for i := range entries {
				e := &entries[i]
				line := dumpLine{Shard: s, Kind: "checkpoint", Name: e.Name}
				if full {
					line.Checkpoint = e
				} else {
					line.K = e.Snapshot.K
					line.Objective = e.Snapshot.Objective
					line.Events = len(e.Snapshot.Instance.Events)
					line.Scheduled = len(e.Snapshot.Schedule)
					line.Utility = e.Snapshot.Utility
				}
				if err := enc.Encode(line); err != nil {
					l.Close()
					return err
				}
			}
		}
		_, rerr := l.Replay(func(r wal.Record) error {
			rec, err := store.DecodeWALRecord(r.Payload)
			if err != nil {
				return fmt.Errorf("seg %d offset %d: %w", r.Seq, r.Offset, err)
			}
			line := dumpLine{Shard: s, Seq: r.Seq, Offset: r.Offset, Kind: rec.Kind, Name: rec.Name, Replace: rec.Replace}
			if full {
				line.Record = rec
			} else {
				if rec.Snapshot != nil {
					line.K = rec.Snapshot.K
					line.Objective = rec.Snapshot.Objective
					line.Events = len(rec.Snapshot.Instance.Events)
				}
				if len(rec.Muts) > 0 {
					line.Muts = len(rec.Muts)
					ops := ""
					for i, m := range rec.Muts {
						if i > 0 {
							ops += ","
						}
						ops += string(m.Op)
					}
					line.Ops = ops
				}
				if rec.Commit != nil {
					line.Committed = true
					line.Scheduled = len(rec.Commit.Schedule)
					line.Utility = rec.Commit.Utility
					line.Stopped = rec.Commit.Stopped
				}
			}
			return enc.Encode(line)
		})
		l.Close()
		if rerr != nil {
			return fmt.Errorf("shard %02d: %w", s, rerr)
		}
	}
	return nil
}
