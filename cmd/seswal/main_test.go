package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ses"
	"ses/internal/sestest"
	"ses/internal/wal"
)

// buildLog creates a durable store with a little traffic, closes it
// cleanly (writing the final checkpoint) and returns its data dir.
func buildLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := sestest.Random(sestest.Config{Users: 20, Events: 8, Intervals: 3, Competing: 2, Seed: 5})
	ctx := context.Background()
	if err := st.Create("walk", inst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(ctx, "walk", []ses.Mutation{
		ses.UpdateInterestOp(0, 1, 0.7),
		ses.SetKOp(4),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Resolve(ctx, "walk"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSeswalUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"frobnicate", t.TempDir()}, &out); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := run([]string{"ls", t.TempDir()}, &out); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestSeswalLsVerifyDump(t *testing.T) {
	dir := buildLog(t)
	var out strings.Builder
	if err := run([]string{"ls", dir}, &out); err != nil {
		t.Fatalf("ls: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 sessions") {
		t.Errorf("ls output missing checkpoint summary:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"verify", dir}, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 corrupt") {
		t.Errorf("verify output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"dump", dir}, &out); err != nil {
		t.Fatalf("dump: %v\n%s", err, out.String())
	}
	// A cleanly closed store dumps its checkpoint entry.
	var sawCheckpoint bool
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var line dumpLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("dump line %q: %v", sc.Text(), err)
		}
		if line.Kind == "checkpoint" && line.Name == "walk" && line.K == 4 {
			sawCheckpoint = true
		}
	}
	if !sawCheckpoint {
		t.Errorf("dump missing the checkpoint entry:\n%s", out.String())
	}
}

func TestSeswalDumpRecordsAndTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone),
		ses.WithCheckpointEvery(-1), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := sestest.Random(sestest.Config{Users: 20, Events: 8, Intervals: 3, Competing: 2, Seed: 6})
	if err := st.Create("torn", inst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(context.Background(), "torn", []ses.Mutation{
		ses.UpdateInterestOp(1, 1, 0.4),
	}); err != nil {
		t.Fatal(err)
	}
	// Freeze the log before Close checkpoints it away.
	img := t.TempDir()
	if err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(img, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(img, rel), data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var out strings.Builder
	if err := run([]string{"dump", img}, &out); err != nil {
		t.Fatalf("dump: %v\n%s", err, out.String())
	}
	var kinds []string
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	var segPath string
	for sc.Scan() {
		var line dumpLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, line.Kind)
		if line.Kind == "batch" && (!line.Committed || line.Ops != "update_interest") {
			t.Errorf("batch line wrong: %+v", line)
		}
	}
	if len(kinds) != 2 || kinds[0] != "create" || kinds[1] != "batch" {
		t.Fatalf("dump kinds = %v, want [create batch]", kinds)
	}

	// Tear the tail: verify must report it but still exit 0.
	if err := filepath.Walk(img, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(path, ".wal") {
			segPath = path
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"verify", img}, &out); err != nil {
		t.Fatalf("verify after tear: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "torn tail") || !strings.Contains(out.String(), "1 torn tail(s), 0 corrupt") {
		t.Errorf("verify after tear:\n%s", out.String())
	}

	// Full dump embeds the snapshot.
	out.Reset()
	if err := run([]string{"dump", "-full", img}, &out); err != nil {
		t.Fatalf("dump -full: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "\"record\"") || !strings.Contains(out.String(), "\"instance\"") {
		t.Errorf("full dump missing embedded snapshot:\n%s", out.String())
	}
}

// TestSeswalStats covers the stats verb: offline record/segment/byte
// accounting on a frozen data dir, and the live amortization fetch
// from a (mock) sesd /v1/metrics endpoint.
func TestSeswalStats(t *testing.T) {
	dir := t.TempDir()
	st, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone),
		ses.WithCheckpointEvery(-1), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := sestest.Random(sestest.Config{Users: 20, Events: 8, Intervals: 3, Competing: 2, Seed: 7})
	if err := st.Create("stats", inst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(context.Background(), "stats", []ses.Mutation{
		ses.UpdateInterestOp(1, 1, 0.4),
	}); err != nil {
		t.Fatal(err)
	}
	// Freeze the log before Close checkpoints the records away.
	img := t.TempDir()
	if err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(img, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(img, rel), data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var out strings.Builder
	if err := run([]string{"stats", img}, &out); err != nil {
		t.Fatalf("stats: %v\n%s", err, out.String())
	}
	for _, want := range []string{"records:      2", "create", "batch", "segments:", "checkpoints:", "point -metrics"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}

	// Live counters from a mock daemon.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, `{"wal":{"appends":80,"fsyncs":10,"batches":10,"batched_records":80,"records_per_fsync":8}}`)
	}))
	defer srv.Close()
	out.Reset()
	if err := run([]string{"stats", "-metrics", srv.URL, img}, &out); err != nil {
		t.Fatalf("stats -metrics: %v\n%s", err, out.String())
	}
	for _, want := range []string{"80 over 10 fsyncs", "8.0 records/fsync", "10 batches covering 80 records"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats -metrics output missing %q:\n%s", want, out.String())
		}
	}

	// A daemon serving no wal section (memory-only) is an error, not a
	// silent zero report.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"sessions":1}`)
	}))
	defer bare.Close()
	if err := run([]string{"stats", "-metrics", bare.URL, img}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "no wal section") {
		t.Errorf("stats against memory-only daemon: %v", err)
	}
}

// TestSeswalVerifyFlagsCorruption plants a CRC-clean record that is
// not a valid store record: verify must flag it and exit non-zero.
func TestSeswalVerifyFlagsCorruption(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "shard-00")
	l, err := wal.Open(shard, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte{0x7f, 'b', 'o', 'g', 'u', 's'}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var out strings.Builder
	if err := run([]string{"verify", dir}, &out); err == nil {
		t.Fatalf("verify accepted a bogus record:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fails to decode") {
		t.Errorf("verify output:\n%s", out.String())
	}
	// ls and dump surface it too (dump errors out).
	out.Reset()
	if err := run([]string{"ls", dir}, &out); err != nil {
		t.Fatalf("ls: %v", err)
	}
	out.Reset()
	if err := run([]string{"dump", dir}, &out); err == nil {
		t.Error("dump accepted a bogus record")
	}
}

// buildOpenLog creates a durable store with traffic and leaves it
// un-checkpointed (no Close), so every record is still in the log.
func buildOpenLog(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	inst := sestest.Random(sestest.Config{Users: 20, Events: 8, Intervals: 3, Competing: 2, Seed: 5})
	ctx := context.Background()
	if err := st.Create("tailed", inst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(ctx, "tailed", []ses.Mutation{ses.SetKOp(4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Resolve(ctx, "tailed"); err != nil {
		t.Fatal(err)
	}
	return dir, "tailed"
}

func TestSeswalTail(t *testing.T) {
	dir, name := buildOpenLog(t)

	// -n bounds the tail, so it terminates once the log's three
	// records (create, batch, resolve) are delivered.
	var out strings.Builder
	if err := run([]string{"tail", "-n", "3", dir}, &out); err != nil {
		t.Fatalf("tail: %v\noutput: %s", err, out.String())
	}
	var kinds []string
	var cursors []string
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var line dumpLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad tail line %q: %v", sc.Text(), err)
		}
		if line.Name != name {
			t.Errorf("tail line names %q, want %q", line.Name, name)
		}
		if line.Cursor == "" {
			t.Errorf("tail line has no cursor: %q", sc.Text())
		}
		kinds = append(kinds, line.Kind)
		cursors = append(cursors, line.Cursor)
	}
	if want := []string{"create", "batch", "resolve"}; strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("tail kinds = %v, want %v", kinds, want)
	}

	// Resuming -from the first record's cursor replays only the rest.
	shard := 0
	for s := 0; s < 64; s++ {
		if _, err := os.Stat(filepath.Join(dir, "shard-"+twoDigits(s))); err == nil {
			shard = s
			break
		}
	}
	out.Reset()
	if err := run([]string{"tail", "-shard", itoa(shard), "-from", cursors[0], "-n", "2", dir}, &out); err != nil {
		t.Fatalf("tail -from: %v", err)
	}
	var resumed []string
	sc = bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var line dumpLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		resumed = append(resumed, line.Kind)
	}
	if want := []string{"batch", "resolve"}; strings.Join(resumed, ",") != strings.Join(want, ",") {
		t.Fatalf("resumed kinds = %v, want %v", resumed, want)
	}

	// -from without -shard is a usage error.
	if err := run([]string{"tail", "-from", "1:7", dir}, io.Discard); err == nil {
		t.Error("tail -from without -shard accepted")
	}
}

func twoDigits(n int) string {
	return string([]byte{'0' + byte(n/10), '0' + byte(n%10)})
}

func itoa(n int) string {
	return twoDigits(n)
}
