package main

import (
	"fmt"
	"math"
	"strings"

	"ses/internal/core"
	"ses/internal/interest"
	"ses/internal/randx"
)

// Scenario presets reshape a built instance's candidate interest so
// that a specific objective is actually stressed instead of agreeing
// with plain attendance maximization:
//
//   - skewed — attendance stress: a hash-selected head of users gets
//     its interest amplified while the long tail is attenuated toward
//     the attendance threshold, so schedules that smear events thinly
//     leave most engagement probabilities below θ and score near zero
//     under the attendance objective.
//   - minority — fairness stress: a small user minority has its
//     interest concentrated on a small pool of minority events and
//     removed everywhere else, while the majority barely cares about
//     those events. Ω-maximizing schedules starve the minority; the
//     fairness objective's min-participant term protects it.
//
// Presets are deterministic in the master seed and leave the dataset,
// events, competition and activity model untouched — only candidate
// interest rows are rewritten (still valid sparse rows, so the
// instance re-validates).

// presetNames lists the registered scenario presets.
func presetNames() []string { return []string{"skewed", "minority"} }

// validPreset checks a preset name ("" is the no-op default).
func validPreset(preset string) error {
	switch preset {
	case "", "skewed", "minority":
		return nil
	}
	return fmt.Errorf("unknown -preset %q (known: %s)",
		preset, strings.Join(presetNames(), ", "))
}

// applyPreset rewrites inst's candidate interest per the named preset
// ("" is a no-op). Unknown names are an error.
func applyPreset(inst *core.Instance, preset string, seed uint64) error {
	if err := validPreset(preset); err != nil {
		return err
	}
	switch preset {
	case "":
		return nil
	case "skewed":
		applySkewed(inst, seed)
	case "minority":
		applyMinority(inst, seed)
	}
	return inst.Validate()
}

// pickSet deterministically selects n distinct indices below limit.
func pickSet(seed uint64, label string, limit, n int) map[int32]bool {
	perm := randx.Derive(seed, label).Perm(limit)
	set := make(map[int32]bool, n)
	for _, idx := range perm[:n] {
		set[int32(idx)] = true
	}
	return set
}

// applySkewed amplifies a 20% head of users (µ^(1/3), toward 1) and
// attenuates the tail (µ^3, toward 0) in every candidate row.
func applySkewed(inst *core.Instance, seed uint64) {
	head := pickSet(seed, "preset-skewed-head", inst.NumUsers, inst.NumUsers/5)
	for e := 0; e < inst.CandInterest.NumEvents(); e++ {
		row := inst.CandInterest.Row(e)
		vals := make([]float64, len(row.Vals))
		for i, v := range row.Vals {
			if head[row.IDs[i]] {
				vals[i] = math.Min(1, math.Cbrt(v))
			} else {
				vals[i] = v * v * v
			}
		}
		inst.CandInterest.SetRow(e, mustRow(row.IDs, vals))
	}
}

// applyMinority concentrates a 10% user minority on a 25% event pool:
// on minority events the minority's interest is boosted and the
// majority's attenuated, everywhere else the minority's entries are
// dropped.
func applyMinority(inst *core.Instance, seed uint64) {
	nU := inst.NumUsers
	nE := inst.CandInterest.NumEvents()
	minUsers := pickSet(seed, "preset-minority-users", nU, max(1, nU/10))
	minEvents := pickSet(seed, "preset-minority-events", nE, max(1, nE/4))
	for e := 0; e < nE; e++ {
		row := inst.CandInterest.Row(e)
		ids := make([]int32, 0, len(row.IDs))
		vals := make([]float64, 0, len(row.Vals))
		for i, id := range row.IDs {
			v := row.Vals[i]
			switch {
			case minEvents[int32(e)] && minUsers[id]:
				v = 0.6 + 0.4*v // the minority cares a lot about its events
			case minEvents[int32(e)]:
				v *= 0.15 // the majority barely notices them
			case minUsers[id]:
				v = 0 // the minority cares about nothing else
			}
			if v > 0 {
				ids = append(ids, id)
				vals = append(vals, v)
			}
		}
		inst.CandInterest.SetRow(e, mustRow(ids, vals))
	}
}

// mustRow builds a sparse row from already-sorted ids; preset
// transforms preserve order, so failure means a bug.
func mustRow(ids []int32, vals []float64) interest.SparseVector {
	v, err := interest.NewSparseVector(ids, vals)
	if err != nil {
		panic(err)
	}
	return v
}
