// Command sesgen generates synthetic EBSN datasets and SES problem
// instances and writes them as JSON for later use with sessolve or
// external tooling.
//
// Usage:
//
//	sesgen -out dataset.json [-users N] [-events N] [-tags N]
//	       [-groups N] [-seed S]
//	sesgen -dataset dataset.json -instance inst.json [-k K] [-T N]
//	       [-E N] [-seed S] [-preset skewed|minority]
//	sesgen -colstore inst.sescol -users 1000000 [-k K] [-T N] [-E N]
//	       [-seed S]
//
// With -instance, an instance is built from the dataset (generated
// fresh unless -dataset points at an existing file) using the paper's
// Section IV-A parameters.
//
// With -colstore, a Meetup-shaped instance (power-law event audiences,
// skewed interest values) is streamed directly into a columnar binary
// file (see ses/internal/colstore), bypassing the EBSN pipeline and
// its per-user intermediate state; -users 1000000 completes in seconds
// with a few megabytes of working memory. The other modes cannot be
// combined with it.
//
// -preset reshapes the instance's interest to stress a non-default
// objective: "skewed" concentrates interest in a head of users so the
// attendance objective's success threshold bites, and "minority"
// plants an adversarial user minority whose events only the fairness
// objective protects (see the preset docs in preset.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ses/internal/dataset"
	"ses/internal/ebsn"
	"ses/internal/scalegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sesgen", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the generated dataset JSON here")
	dsPath := fs.String("dataset", "", "load dataset from this file instead of generating")
	instPath := fs.String("instance", "", "also build an instance and write it here")
	users := fs.Int("users", 2000, "users in the generated dataset")
	events := fs.Int("events", 4096, "event pool size")
	tags := fs.Int("tags", 2000, "tag vocabulary size")
	groups := fs.Int("groups", 150, "number of groups")
	k := fs.Int("k", 20, "instance: number of events to schedule")
	intervals := fs.Int("T", 0, "instance: time intervals (0 = paper default 3k/2)")
	cand := fs.Int("E", 0, "instance: candidate events (0 = paper default 2k)")
	preset := fs.String("preset", "", "instance: scenario preset reshaping interest (skewed, minority)")
	colPath := fs.String("colstore", "", "stream a Meetup-shaped instance into this columnar file")
	seed := fs.Uint64("seed", 1, "master seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *colPath != "" {
		if *outPath != "" || *instPath != "" || *dsPath != "" || *preset != "" {
			return fmt.Errorf("-colstore generates directly and cannot be combined with -out/-instance/-dataset/-preset")
		}
		st, err := scalegen.Generate(*colPath, scalegen.Config{
			Users: *users, K: *k, Intervals: *intervals, Events: *cand, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote columnar instance to %s (|U|=%d, |T|=%d, |E|=%d, |C|=%d, nnz=%d+%d)\n",
			*colPath, st.Users, st.Intervals, st.Events, st.Competing, st.CandNNZ, st.CompNNZ)
		return nil
	}
	if *preset != "" && *instPath == "" {
		return fmt.Errorf("-preset only applies to -instance output")
	}
	if err := validPreset(*preset); err != nil {
		return err // fail before minutes of dataset generation
	}

	var ds *ebsn.Dataset
	if *dsPath != "" {
		f, err := os.Open(*dsPath)
		if err != nil {
			return err
		}
		ds, err = dataset.LoadDataset(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded dataset: %d users, %d events\n", len(ds.UserTags), len(ds.EventTags))
	} else {
		cfg := ebsn.Config{
			Seed: *seed, NumUsers: *users, NumEvents: *events,
			NumTags: *tags, NumGroups: *groups,
		}
		var err error
		ds, err = ebsn.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generated dataset: %d users, %d events, %d tags, %d groups\n",
			*users, *events, *tags, *groups)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		err = dataset.SaveDataset(f, ds)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote dataset to %s\n", *outPath)
	}

	if *instPath != "" {
		inst, err := dataset.BuildInstance(ds, dataset.PaperParams{
			K: *k, Intervals: *intervals, CandidateEvents: *cand, Seed: *seed,
		})
		if err != nil {
			return err
		}
		if err := applyPreset(inst, *preset, *seed); err != nil {
			return err
		}
		if *preset != "" {
			fmt.Fprintf(out, "applied preset %q\n", *preset)
		}
		f, err := os.Create(*instPath)
		if err != nil {
			return err
		}
		err = dataset.SaveInstance(f, inst)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote instance to %s (k=%d, |T|=%d, |E|=%d, |C|=%d)\n",
			*instPath, *k, inst.NumIntervals, inst.NumEvents(), len(inst.Competing))
	}

	if *outPath == "" && *instPath == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -instance")
	}
	return nil
}
