package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ses/internal/dataset"
)

// Regenerate the committed golden instances with:
//
//	go test ./cmd/sesgen/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenArgs are the deterministic generation parameters shared by all
// preset goldens: small enough to keep the committed files readable,
// large enough that the presets have a head/minority to select.
func goldenArgs(instPath, preset string) []string {
	args := []string{
		"-instance", instPath,
		"-users", "40", "-events", "128", "-tags", "60", "-groups", "6",
		"-k", "4", "-T", "6", "-E", "8", "-seed", "2026",
	}
	if preset != "" {
		args = append(args, "-preset", preset)
	}
	return args
}

// TestGoldenInstancePerPreset locks the exact instance bytes sesgen
// writes for a fixed seed, per scenario preset. A drift in the
// generator, the paper-parameter sampling or a preset transform shows
// up as a golden diff instead of silently changing every downstream
// benchmark.
func TestGoldenInstancePerPreset(t *testing.T) {
	for _, preset := range append([]string{""}, presetNames()...) {
		name := preset
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			instPath := filepath.Join(dir, "inst.json")
			var out bytes.Buffer
			if err := run(goldenArgs(instPath, preset), &out); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(instPath)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "instance_"+name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("instance drifted from %s (%d vs %d bytes); run -update if intended",
					golden, len(got), len(want))
			}
			// The emitted instance must load and validate regardless of
			// the golden comparison.
			f, err := os.Open(instPath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			inst, err := dataset.LoadInstance(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Validate(); err != nil {
				t.Fatalf("preset %q produced an invalid instance: %v", preset, err)
			}
		})
	}
}

// TestPresetValidation covers the flag-level guards.
func TestPresetValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "d.json"), "-preset", "skewed"}, &out); err == nil {
		t.Error("-preset without -instance should fail")
	}
	if err := run(goldenArgs(filepath.Join(t.TempDir(), "i.json"), "bogus"), &out); err == nil {
		t.Error("unknown preset should fail")
	}
}
