package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ses/internal/colstore"
	"ses/internal/dataset"
)

func TestRunGeneratesDatasetAndInstance(t *testing.T) {
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "ds.json")
	instPath := filepath.Join(dir, "inst.json")
	var out bytes.Buffer
	err := run([]string{
		"-out", dsPath, "-instance", instPath,
		"-users", "300", "-events", "400", "-tags", "800", "-groups", "20",
		"-k", "5", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote dataset") || !strings.Contains(out.String(), "wrote instance") {
		t.Fatalf("output: %s", out.String())
	}
	// Both files must load back.
	f, err := os.Open(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.UserTags) != 300 {
		t.Errorf("round-tripped dataset has %d users", len(ds.UserTags))
	}
	f, err = os.Open(instPath)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.LoadInstance(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumEvents() != 10 { // 2k with k=5
		t.Errorf("instance has %d candidate events, want 10", inst.NumEvents())
	}
}

func TestRunLoadsExistingDataset(t *testing.T) {
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "ds.json")
	var out bytes.Buffer
	if err := run([]string{"-out", dsPath, "-users", "200", "-events", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	instPath := filepath.Join(dir, "inst.json")
	if err := run([]string{"-dataset", dsPath, "-instance", instPath, "-k", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded dataset: 200 users") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no flags should be an error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunColstore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.sescol")
	var out bytes.Buffer
	if err := run([]string{"-colstore", path, "-users", "5000", "-k", "6", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote columnar instance") {
		t.Fatalf("output: %s", out.String())
	}
	st, err := colstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	inst := st.Instance()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumUsers != 5000 || inst.NumEvents() != 12 {
		t.Fatalf("instance shape |U|=%d |E|=%d, want 5000/12", inst.NumUsers, inst.NumEvents())
	}
}

func TestRunColstoreExclusive(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-colstore", filepath.Join(dir, "x.sescol"),
		"-instance", filepath.Join(dir, "inst.json"),
	}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("-colstore combined with -instance should be an error")
	}
}
