package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ses/internal/dataset"
	"ses/internal/ebsn"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	ds, err := ebsn.Generate(ebsn.Config{
		Seed: 2, NumUsers: 300, NumEvents: 400, NumTags: 800, NumGroups: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.BuildInstance(ds, dataset.PaperParams{
		K: 6, Intervals: 5, CandidateEvents: 12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.SaveInstance(f, inst); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSolvesInstance(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-instance", path, "-algo", "grd", "-show", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"grd scheduled 6/6", "expected attendance", "interval", "more assignments"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeInstance(t)
	for _, algo := range []string{"grdlazy", "top", "rand", "localsearch", "spread", "online"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-instance", path, "-algo", algo, "-k", "4"}, &out); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunWorkersFlagIdenticalOutput(t *testing.T) {
	// -workers must not change anything the user sees.
	path := writeInstance(t)
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), []string{"-instance", path, "-algo", "grd", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-instance", path, "-algo", "grd", "-workers", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	// The elapsed-time figure is wall clock; blank that line's timing
	// before comparing.
	normalize := func(s string) string {
		lines := strings.Split(s, "\n")
		for i, l := range lines {
			if idx := strings.Index(l, " events in "); idx >= 0 {
				if semi := strings.Index(l, ";"); semi > idx {
					lines[i] = l[:idx] + l[semi:]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if normalize(serial.String()) != normalize(parallel.String()) {
		t.Errorf("output differs between -workers 1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), nil, &bytes.Buffer{}); err == nil {
		t.Error("missing -instance accepted")
	}
	if err := run(context.Background(), []string{"-instance", "/nonexistent.json"}, &bytes.Buffer{}); err == nil {
		t.Error("nonexistent file accepted")
	}
	path := writeInstance(t)
	if err := run(context.Background(), []string{"-instance", path, "-algo", "martian"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
