// Command sessolve solves a SES instance file with a chosen algorithm
// and prints the schedule and its expected attendance.
//
// Usage:
//
//	sessolve -instance inst.json [-algo grd] [-k K] [-seed S] [-show N]
//	         [-workers W] [-timeout D] [-progress] [-objective SPEC]
//
// The instance file is produced by sesgen (or any tool emitting the
// same JSON). -k 0 uses the instance's natural k = |E|/2 (the paper's
// ratio). -show limits how many assignments are printed.
//
// -objective selects what the solver maximizes: "omega" (default, the
// paper's expected attendance), "attendance[:theta]" (thresholded
// success-probability attendance) or "fairness[:blend]" (egalitarian
// min-participant blend). Non-default objectives print their value on
// an extra line next to the always-reported Ω.
//
// -timeout bounds the solve with a context deadline: anytime
// algorithms (grd, grdlazy, beam, localsearch, anneal) return their
// feasible best-so-far schedule when it expires (marked "stopped:
// deadline" in the output); the others abort with an error. Ctrl-C
// cancels the solve promptly either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"time"

	"ses"
	"ses/internal/dataset"
	"ses/internal/solver"
	"ses/internal/tablefmt"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sessolve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sessolve", flag.ContinueOnError)
	instPath := fs.String("instance", "", "instance JSON file (required)")
	algo := fs.String("algo", "grd", fmt.Sprintf("algorithm: %v", ses.SolverNames()))
	k := fs.Int("k", 0, "events to schedule (0 = |E|/2, the paper's ratio)")
	seed := fs.Uint64("seed", 1, "seed for randomized algorithms")
	show := fs.Int("show", 20, "max assignments to print")
	workers := fs.Int("workers", 0, "goroutines for initial scoring (0 = all cores, 1 = serial; output is identical)")
	objective := fs.String("objective", "", `objective to maximize: "omega" (default), "attendance[:theta]" or "fairness[:blend]"`)
	timeout := fs.Duration("timeout", 0, "solve deadline (0 = none); anytime algorithms return their best-so-far")
	progress := fs.Bool("progress", false, "stream one line per applied assignment to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instPath == "" {
		return fmt.Errorf("-instance is required")
	}
	f, err := os.Open(*instPath)
	if err != nil {
		return err
	}
	inst, err := dataset.LoadInstance(f)
	f.Close()
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = inst.NumEvents() / 2
	}
	obj, err := ses.ParseObjective(*objective)
	if err != nil {
		return err
	}
	opts := []ses.Option{ses.WithSeed(*seed), ses.WithWorkers(*workers), ses.WithObjective(obj)}
	if *progress {
		opts = append(opts, ses.WithProgress(func(p ses.Progress) {
			fmt.Fprintf(os.Stderr, "%s: scheduled event %d at interval %d (%d so far)\n",
				p.Solver, p.Event, p.Interval, p.Scheduled)
		}))
	}
	s, err := ses.New(*algo, opts...)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Fprintf(out, "instance: %d users, %d intervals, %d candidate events, %d competing, θ=%g\n",
		inst.NumUsers, inst.NumIntervals, inst.NumEvents(), len(inst.Competing), inst.Resources)
	start := time.Now()
	res, err := s.Solve(ctx, inst, *k)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("solve canceled: %w", err)
		}
		return err
	}
	elapsed := time.Since(start)
	note := ""
	if res.Stopped != "" {
		note = fmt.Sprintf(" (stopped: %s)", res.Stopped)
	}
	fmt.Fprintf(out, "%s scheduled %d/%d events in %s%s; expected attendance Ω = %.2f\n",
		s.Name(), res.Schedule.Size(), *k, tablefmt.Duration(elapsed), note, res.Omega)
	// The extra objective line appears only for non-default objectives,
	// keeping the default output (and its goldens) unchanged.
	if res.Objective != "omega" {
		fmt.Fprintf(out, "objective %s = %.4f\n", res.Objective, res.Utility)
	}
	fmt.Fprintln(out)

	// Print assignments by decreasing attendance.
	type row struct {
		a     int
		t     int
		name  string
		omega float64
	}
	var rows []row
	eng := res.Schedule
	for _, a := range eng.Assignments() {
		rows = append(rows, row{
			a: a.Event, t: a.Interval,
			name:  inst.Events[a.Event].Name,
			omega: attendanceOf(res, a.Event),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].omega > rows[j].omega })
	tab := &tablefmt.Table{Header: []string{"event", "name", "interval", "expected attendees"}}
	shown := len(rows)
	if shown > *show {
		shown = *show
	}
	for _, r := range rows[:shown] {
		tab.AddRow(fmt.Sprintf("%d", r.a), r.name, fmt.Sprintf("%d", r.t), tablefmt.Float(r.omega))
	}
	if err := tab.Render(out); err != nil {
		return err
	}
	if rest := len(rows) - shown; rest > 0 {
		fmt.Fprintf(out, "... and %d more assignments\n", rest)
	}
	return nil
}

// attendanceOf recomputes ω for one scheduled event from the result's
// schedule (cheap relative to the solve).
func attendanceOf(res *solver.Result, event int) float64 {
	inst := res.Schedule.Instance()
	t := res.Schedule.IntervalOf(event)
	sum := 0.0
	row := inst.CandInterest.Row(event)
	for i, id := range row.IDs {
		den := 0.0
		for _, c := range inst.CompetingAt(t) {
			den += inst.CompInterest.Mu(int(id), c)
		}
		for _, p := range res.Schedule.EventsAt(t) {
			den += inst.CandInterest.Mu(int(id), p)
		}
		if den <= 0 {
			continue
		}
		sum += inst.Activity.Prob(int(id), t) * row.Vals[i] / den
	}
	return sum
}
