package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"ses/internal/dataset"
	"ses/internal/sestest"
)

// Regenerate the committed instance and golden outputs with:
//
//	go test ./cmd/sessolve/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// timingRe blanks the one wall-clock figure in the output.
var timingRe = regexp.MustCompile(` events in [^;]+;`)

func normalizeTiming(s string) string {
	return timingRe.ReplaceAllString(s, ` events in <elapsed>;`)
}

// goldenInstance returns the committed instance path, regenerating the
// file under -update.
func goldenInstance(t *testing.T) string {
	t.Helper()
	path := filepath.Join("testdata", "golden_instance.json")
	if *update {
		inst := sestest.Random(sestest.Config{
			Users: 40, Events: 14, Intervals: 5, Competing: 4, Locations: 4, Seed: 2026,
		})
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := dataset.SaveInstance(f, inst); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput locks the user-visible output of sessolve on a
// committed instance for a deterministic algorithm set. -workers 1
// and fixed seeds make everything but the elapsed time reproducible;
// the timing figure is normalized away.
func TestGoldenOutput(t *testing.T) {
	inst := goldenInstance(t)
	for _, tc := range []struct {
		golden string
		args   []string
	}{
		{"grd.golden", []string{"-instance", inst, "-algo", "grd", "-workers", "1"}},
		{"grd_k4_show3.golden", []string{"-instance", inst, "-algo", "grd", "-k", "4", "-show", "3", "-workers", "1"}},
		{"top.golden", []string{"-instance", inst, "-algo", "top", "-workers", "1"}},
		{"rand_seed7.golden", []string{"-instance", inst, "-algo", "rand", "-seed", "7", "-workers", "1"}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), tc.args, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, normalizeTiming(out.String()))
		})
	}
}
