package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ses"
)

// startServe runs the full serve loop (listener, graceful shutdown,
// final checkpoint) on an ephemeral port and returns the base URL, a
// shutdown trigger and the exit channel.
func startServe(t *testing.T, st storeAPI, durable *ses.DurableStore) (url string, shutdown func(), done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	pipe := ses.NewPipeline(st, ses.WithResolveWorkers(2))
	go func() { done <- serve(ctx, ln, st, pipe, durable, nil, nil, 2*time.Second) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestGracefulShutdownDurable drives the daemon's lifecycle the way
// systemd would: serve durable traffic, SIGTERM (ctx cancel), drain,
// final checkpoint, exit 0 — then a second boot recovers every
// acknowledged session.
func TestGracefulShutdownDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	url, shutdown, done := startServe(t, d, d)

	doc := instanceDoc(t, 51)
	var meta ses.SessionMeta
	do(t, "POST", url+"/v1/sessions", createReq{Name: "fest", K: 4, Instance: doc}, http.StatusCreated, &meta)
	var batch ses.BatchResult
	do(t, "POST", url+"/v1/sessions/fest/batch", batchReq{Mutations: []ses.Mutation{
		ses.UpdateInterestOp(1, 2, 0.8),
		ses.SetKOp(5),
	}}, http.StatusOK, &batch)
	if batch.Delta == nil {
		t.Fatal("batch committed no delta")
	}
	var snapshot strings.Builder
	resp, err := http.Get(url + "/v1/sessions/fest/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := copyBody(&snapshot, resp); err != nil {
		t.Fatal(err)
	}

	// Shut down: serve must return nil (exit 0) and leave a final
	// checkpoint on disk.
	shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("daemon still accepting requests after shutdown")
	}
	foundCkpt := false
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(path, ".ckpt") {
			foundCkpt = true
		}
		return nil
	})
	if !foundCkpt {
		t.Fatal("graceful shutdown left no checkpoint")
	}

	// Second boot: recovery must serve the same session, and the
	// snapshot must be byte-identical to the pre-shutdown one.
	d2, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	url2, shutdown2, done2 := startServe(t, d2, d2)
	var meta2 ses.SessionMeta
	do(t, "GET", url2+"/v1/sessions/fest", nil, http.StatusOK, &meta2)
	if meta2.K != 5 || meta2.Mutations != meta.Mutations+2 {
		t.Fatalf("recovered meta: %+v (pre-shutdown %+v)", meta2, meta)
	}
	var snapshot2 strings.Builder
	resp2, err := http.Get(url2 + "/v1/sessions/fest/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := copyBody(&snapshot2, resp2); err != nil {
		t.Fatal(err)
	}
	if snapshot.String() != snapshot2.String() {
		t.Fatalf("recovered snapshot diverged:\n got: %s\nwant: %s", snapshot2.String(), snapshot.String())
	}
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServeMemoryOnlyShutdown covers the durability-less path: serve
// over a plain store still drains and exits cleanly.
func TestServeMemoryOnlyShutdown(t *testing.T) {
	st := ses.NewStore(ses.WithWorkers(1))
	url, shutdown, done := startServe(t, st, nil)
	doc := instanceDoc(t, 52)
	do(t, "POST", url+"/v1/sessions", createReq{Name: "mem", K: 3, Instance: doc}, http.StatusCreated, nil)
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

// TestShutdownCancelsInFlightResolve verifies the drain path: a
// request in flight when shutdown starts is allowed to finish, and
// the daemon exits cleanly afterwards.
func TestShutdownCancelsInFlightResolve(t *testing.T) {
	dir := t.TempDir()
	d, err := ses.OpenStore(ses.WithDurability(dir), ses.WithSyncPolicy(ses.SyncNone), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	url, shutdown, done := startServe(t, d, d)
	doc := instanceDoc(t, 53)
	do(t, "POST", url+"/v1/sessions", createReq{Name: "busy", K: 4, Instance: doc}, http.StatusCreated, nil)

	resolved := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/sessions/busy/resolve", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
		resolved <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the resolve reach the server
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	if err := <-resolved; err != nil {
		t.Logf("in-flight resolve surfaced %v (acceptable if it raced shutdown)", err)
	}
}

// copyBody drains an http response into w.
func copyBody(w *strings.Builder, resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	return io.Copy(w, resp.Body)
}

// TestRunRejectsDurabilityFlagsWithoutDataDir: tuning -sync without
// -data-dir must error out, not silently serve memory-only.
func TestRunRejectsDurabilityFlagsWithoutDataDir(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-addr", "127.0.0.1:0", "-sync", "none"}); err == nil ||
		!strings.Contains(err.Error(), "-data-dir") {
		t.Errorf("run with stray -sync: %v", err)
	}
	if err := run(ctx, []string{"-addr", "127.0.0.1:0", "-checkpoint-every", "5"}); err == nil {
		t.Error("run with stray -checkpoint-every accepted")
	}
}
