package main

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the single-file live dashboard served at GET /.
// It polls /v1/metrics and needs nothing but the daemon itself.
//
//go:embed dashboard.html
var dashboardHTML []byte

func (s *server) dashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
