package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only by the opt-in -pprof listener
	"strconv"
	"time"

	"ses"
	"ses/internal/cluster"
	"ses/internal/obs"
)

// tracer returns the daemon's tracer (nil when observability is off).
func (s *server) tracer() *obs.Tracer {
	if s.obs == nil {
		return nil
	}
	return s.obs.Tracer
}

// statusWriter captures the response status for the per-route counter
// and the root span, passing Flush through so SSE streaming works
// behind the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// traceworthy excludes probes, scrapes, the trace endpoints
// themselves, and long-lived streams (replication, watch SSE) from
// root spans: their durations measure connection lifetime, not work,
// and they would drown the ring.
func traceworthy(path string) bool {
	switch path {
	case "/healthz", "/v1/healthz", "/v1/readyz", "/metrics", "/v1/metrics", "/v1/traces", "/":
		return false
	}
	if len(path) >= 11 && path[:11] == "/v1/traces/" {
		return false
	}
	if len(path) >= 16 && path[:16] == "/v1/replication/" {
		return false
	}
	if len(path) >= 6 && path[len(path)-6:] == "/watch" {
		return false
	}
	return true
}

// instrument is the outermost handler: it counts the request, opens
// the root span (adopting a propagated X-Ses-Trace ID), and records
// the per-route/status series after the mux ran. r.Pattern is read
// AFTER mux.ServeHTTP so the label is the bounded route pattern, not
// the unbounded raw path.
func (s *server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		if t := s.tracer(); t != nil && traceworthy(r.URL.Path) {
			ctx, sp := t.StartRoot(r.Context(), obs.SpanHandler, r.Header.Get("X-Ses-Trace"))
			sp.SetAttr("method", r.Method)
			sp.SetAttr("path", r.URL.Path)
			w.Header().Set("X-Ses-Trace", sp.TraceID())
			r = r.WithContext(ctx)
			defer func() {
				sp.SetAttr("status", sw.status())
				sp.End()
			}()
		}
		mux.ServeHTTP(sw, r)
		if s.httpRequests != nil {
			route := r.Pattern
			if route == "" {
				route = "other"
			}
			s.httpRequests.With(route, strconv.Itoa(sw.status())).Inc()
		}
	})
}

// registerMetrics installs the daemon's Prometheus families. Called
// from routes() (after walStats/node are set) under a sync.Once so
// swapped handlers never double-register.
func (s *server) registerMetrics() {
	if s.obs == nil || s.obs.Metrics == nil {
		return
	}
	s.regOnce.Do(func() {
		reg := s.obs.Metrics
		s.httpRequests = reg.CounterVec("ses_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code")
		s.httpErrors = reg.CounterVec("ses_http_errors_total",
			"HTTP error responses, by class (client = 4xx/499, server = 5xx).", "class")
		reg.CollectFunc("ses_uptime_seconds", "Seconds since the daemon started.", "gauge", nil,
			func(emit func([]string, float64)) { emit(nil, time.Since(s.start).Seconds()) })
		reg.CollectFunc("ses_sessions", "Registered sessions.", "gauge", nil,
			func(emit func([]string, float64)) { emit(nil, float64(s.store.Len())) })
		reg.CollectFunc("ses_resolves_total", "Committed resolves (batch commits included).", "counter", nil,
			func(emit func([]string, float64)) { emit(nil, float64(s.resolves.Load())) })
		reg.CollectFunc("ses_batches_total", "Committed batch requests.", "counter", nil,
			func(emit func([]string, float64)) { emit(nil, float64(s.batches.Load())) })
		if s.pipeline != nil {
			pipe := func(pick func(ses.PipelineMetrics) float64) func(func([]string, float64)) {
				return func(emit func([]string, float64)) { emit(nil, pick(s.pipeline.Metrics())) }
			}
			reg.CollectFunc("ses_pipeline_queue_depth", "Requests queued on the resolve pipeline.", "gauge", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.QueueDepth) }))
			reg.CollectFunc("ses_pipeline_workers", "Resolve pipeline worker-pool size.", "gauge", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Workers) }))
			reg.CollectFunc("ses_pipeline_submitted_total", "Requests accepted by the pipeline.", "counter", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Submitted) }))
			reg.CollectFunc("ses_pipeline_executed_total", "Backend calls the pipeline made.", "counter", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Executed) }))
			reg.CollectFunc("ses_pipeline_coalesced_total", "Requests that shared another request's backend call.", "counter", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Coalesced) }))
			reg.CollectFunc("ses_pipeline_rejected_total", "Admission-control rejections (queue full).", "counter", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Rejected) }))
			reg.CollectFunc("ses_pipeline_withdrawn_total", "Requests withdrawn by context cancellation while queued.", "counter", nil,
				pipe(func(m ses.PipelineMetrics) float64 { return float64(m.Withdrawn) }))
		}
		if s.walStats != nil {
			walc := func(pick func(ses.WALStats) float64) func(func([]string, float64)) {
				return func(emit func([]string, float64)) { emit(nil, pick(s.walStats())) }
			}
			reg.CollectFunc("ses_wal_appends_total", "WAL records appended.", "counter", nil,
				walc(func(w ses.WALStats) float64 { return float64(w.Appends) }))
			reg.CollectFunc("ses_wal_fsyncs_total", "WAL fsyncs issued.", "counter", nil,
				walc(func(w ses.WALStats) float64 { return float64(w.Fsyncs) }))
			reg.CollectFunc("ses_wal_batches_total", "Group-commit batches flushed.", "counter", nil,
				walc(func(w ses.WALStats) float64 { return float64(w.Batches) }))
			reg.CollectFunc("ses_wal_batched_records_total", "Records committed through group-commit batches.", "counter", nil,
				walc(func(w ses.WALStats) float64 { return float64(w.BatchedRecords) }))
			reg.CollectFunc("ses_wal_records_per_fsync", "Realized fsync amortization (appends per fsync).", "gauge", nil,
				func(emit func([]string, float64)) { emit(nil, s.walStats().RecordsPerFsync()) })
		}
		if s.node != nil {
			reg.CollectFunc("ses_replication", "Replication shipping, apply, lag, and ack counters.", "gauge", []string{"stat"},
				func(emit func([]string, float64)) {
					m := s.node.Metrics()
					emit([]string{"active_streams"}, float64(m.ActiveStreams))
					emit([]string{"records_shipped_total"}, float64(m.RecordsShipped))
					emit([]string{"bytes_shipped_total"}, float64(m.BytesShipped))
					emit([]string{"records_applied_total"}, float64(m.RecordsApplied))
					emit([]string{"bytes_applied_total"}, float64(m.BytesApplied))
					emit([]string{"promoted_sessions_total"}, float64(m.PromotedSessions))
					emit([]string{"epoch"}, float64(m.Epoch))
					emit([]string{"adopted_shards_pending"}, float64(m.AdoptedShardsPending))
				})
			repl := func(pick func(m cluster.Metrics) float64) func(func([]string, float64)) {
				return func(emit func([]string, float64)) { emit(nil, pick(s.node.Metrics())) }
			}
			reg.CollectFunc("ses_replication_follower_lag_records", "Primary-measured records this node's follower streams trail by.", "gauge", nil,
				repl(func(m cluster.Metrics) float64 { return float64(m.FollowerLagRecords) }))
			reg.CollectFunc("ses_replication_follower_lag_bytes", "Primary-measured bytes this node's follower streams trail by.", "gauge", nil,
				repl(func(m cluster.Metrics) float64 { return float64(m.FollowerLagBytes) }))
			reg.CollectFunc("ses_replication_ack_waits_total", "Mutations that waited for synchronous follower acks.", "counter", nil,
				repl(func(m cluster.Metrics) float64 { return float64(m.AckWaits) }))
			reg.CollectFunc("ses_replication_ack_timeouts_total", "Synchronous-ack waits that degraded to 503.", "counter", nil,
				repl(func(m cluster.Metrics) float64 { return float64(m.AckTimeouts) }))
			reg.CollectFunc("ses_replication_acks_received_total", "Follower ack POSTs processed.", "counter", nil,
				repl(func(m cluster.Metrics) float64 { return float64(m.AcksReceived) }))
		}
		if s.obs.Hub != nil {
			hub := func(pick func(obs.HubStats) float64) func(func([]string, float64)) {
				return func(emit func([]string, float64)) { emit(nil, pick(s.obs.Hub.Stats())) }
			}
			reg.CollectFunc("ses_watch_subscribers", "Live watch (SSE) subscribers.", "gauge", nil,
				hub(func(h obs.HubStats) float64 { return float64(h.Subscribers) }))
			reg.CollectFunc("ses_watch_events_total", "Events published to watch subscribers.", "counter", nil,
				hub(func(h obs.HubStats) float64 { return float64(h.Published) }))
			reg.CollectFunc("ses_watch_evictions_total", "Watch subscribers evicted for falling behind.", "counter", nil,
				hub(func(h obs.HubStats) float64 { return float64(h.Evicted) }))
		}
		reg.CollectFunc("ses_traces", "Traces retained in the ring.", "gauge", nil,
			func(emit func([]string, float64)) { emit(nil, float64(s.obs.Tracer.Len())) })
	})
}

// listTraces serves GET /v1/traces: recent traces, newest first,
// filterable with ?min=DURATION and ?limit=N.
func (s *server) listTraces(w http.ResponseWriter, r *http.Request) {
	t := s.tracer()
	if t == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing is disabled (-obs=false)"})
		return
	}
	var minDur time.Duration
	if q := r.URL.Query().Get("min"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min %q", q))
			return
		}
		minDur = d
	}
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = n
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"traces": t.Traces(minDur, limit)})
}

// getTrace serves GET /v1/traces/{id}: the full span tree.
func (s *server) getTrace(w http.ResponseWriter, r *http.Request) {
	t := s.tracer()
	if t == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing is disabled (-obs=false)"})
		return
	}
	tree, ok := t.Trace(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown trace id (evicted or never seen)"})
		return
	}
	s.writeJSON(w, http.StatusOK, tree)
}

// watchHeartbeat keeps idle SSE connections alive through proxies.
const watchHeartbeat = 15 * time.Second

// watchSession serves GET /v1/sessions/{name}/watch: a server-sent
// event stream of the session's live activity — a "hello" event with
// the current metadata, then "progress" events per solver assignment
// and a "commit" event per committed operation. A subscriber that
// stops reading is evicted (stream ends) rather than ever stalling
// the solver.
func (s *server) watchSession(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Hub == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "watch streaming is disabled (-obs=false)"})
		return
	}
	name := r.PathValue("name")
	meta, err := s.store.Meta(name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	// Subscribe BEFORE the hello snapshot: an event landing between
	// the two is buffered, so the client never misses a commit that
	// happened while the stream was starting.
	sub := s.obs.Hub.Subscribe(name, 256)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := writeSSE(w, "hello", mustJSON(meta)); err != nil {
		return
	}
	fl.Flush()

	beat := time.NewTicker(watchHeartbeat)
	defer beat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-beat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				// Evicted for falling behind, or the session was deleted.
				return
			}
			if err := writeSSE(w, ev.Type, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE frames one server-sent event.
func writeSSE(w http.ResponseWriter, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// mustJSON marshals a value that cannot fail (plain structs).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return b
}
