package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ses"
	"ses/internal/dataset"
	"ses/internal/sestest"
)

// testServer spins up the daemon handler over a fresh store with the
// same resolve pipeline the daemon runs in production.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := ses.NewStore(ses.WithWorkers(1))
	pipe := ses.NewPipeline(st, ses.WithResolveWorkers(2))
	srv := httptest.NewServer(newServer(st, pipe).routes())
	t.Cleanup(func() {
		srv.Close()
		pipe.Close()
	})
	return srv
}

// instanceDoc builds a serializable instance document.
func instanceDoc(t *testing.T, seed uint64) *dataset.InstanceDoc {
	t.Helper()
	inst := sestest.Random(sestest.Config{Users: 25, Events: 10, Intervals: 4, Competing: 2, Seed: seed})
	doc, err := dataset.NewInstanceDoc(inst)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// do runs one JSON request and decodes the response into out (unless
// nil), asserting the status code.
func do(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
}

func TestDaemonLifecycle(t *testing.T) {
	srv := testServer(t)
	doc := instanceDoc(t, 31)

	var meta ses.SessionMeta
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "fest", K: 4, Instance: doc}, http.StatusCreated, &meta)
	if meta.Name != "fest" || meta.K != 4 || meta.Events != 10 {
		t.Fatalf("create meta: %+v", meta)
	}
	// Duplicate name conflicts.
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "fest", K: 4, Instance: doc}, http.StatusConflict, nil)

	// Resolve commits a schedule.
	var delta ses.Delta
	do(t, "POST", srv.URL+"/v1/sessions/fest/resolve", nil, http.StatusOK, &delta)
	if len(delta.Added) == 0 || delta.Utility <= 0 {
		t.Fatalf("first resolve: %+v", delta)
	}

	// Batch: mutations + one resolve, ids returned.
	var res ses.BatchResult
	do(t, "POST", srv.URL+"/v1/sessions/fest/batch", batchReq{Mutations: []ses.Mutation{
		ses.AddEventOp(ses.Event{Location: 1, Required: 1, Name: "late-show"}, map[int]float64{0: 0.9}),
		ses.UpdateInterestOp(1, 0, 0.8),
		ses.SetKOp(5),
	}}, http.StatusOK, &res)
	if len(res.EventIDs) != 1 || res.EventIDs[0] != 10 || res.Delta == nil {
		t.Fatalf("batch result: %+v", res)
	}

	// Schedule view matches the metadata view.
	var sched scheduleResp
	do(t, "GET", srv.URL+"/v1/sessions/fest/schedule", nil, http.StatusOK, &sched)
	do(t, "GET", srv.URL+"/v1/sessions/fest", nil, http.StatusOK, &meta)
	if len(sched.Assignments) != meta.Scheduled || sched.Utility != meta.Utility {
		t.Fatalf("schedule %+v disagrees with meta %+v", sched, meta)
	}
	if meta.Resolves != 2 || meta.Batches != 1 || meta.Mutations != 3 {
		t.Fatalf("meta counters: %+v", meta)
	}

	// Listing returns the one session.
	var metas []ses.SessionMeta
	do(t, "GET", srv.URL+"/v1/sessions", nil, http.StatusOK, &metas)
	if len(metas) != 1 || metas[0].Name != "fest" {
		t.Fatalf("list: %+v", metas)
	}

	// Metrics counts what happened.
	var m metricsResp
	do(t, "GET", srv.URL+"/v1/metrics", nil, http.StatusOK, &m)
	if m.Sessions != 1 || m.Resolves != 2 || m.Batches != 1 || m.Errors == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.ResolveMs["p50"] <= 0 || m.ResolveMs["max"] < m.ResolveMs["p50"] {
		t.Fatalf("latency summary: %+v", m.ResolveMs)
	}

	// Delete, then 404.
	do(t, "DELETE", srv.URL+"/v1/sessions/fest", nil, http.StatusNoContent, nil)
	do(t, "GET", srv.URL+"/v1/sessions/fest", nil, http.StatusNotFound, nil)
}

// TestMetricsFreshBoot is the zero-sample regression: /v1/metrics on a
// daemon that has never resolved anything must answer 200 with a
// JSON-safe body (empty latency map, zero counters), not panic on an
// empty percentile sample and 500.
func TestMetricsFreshBoot(t *testing.T) {
	srv := testServer(t)
	var m metricsResp
	do(t, "GET", srv.URL+"/v1/metrics", nil, http.StatusOK, &m)
	if m.Sessions != 0 || m.Resolves != 0 || m.Batches != 0 {
		t.Fatalf("fresh-boot metrics not zero: %+v", m)
	}
	if len(m.ResolveMs) != 0 {
		t.Fatalf("fresh-boot latency summary should be empty, got %+v", m.ResolveMs)
	}
	if m.UptimeSec < 0 {
		t.Fatalf("uptime %v negative", m.UptimeSec)
	}
	// A session that exists but was never resolved must not change that.
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "idle", K: 3, Instance: instanceDoc(t, 77)}, http.StatusCreated, nil)
	do(t, "GET", srv.URL+"/v1/metrics", nil, http.StatusOK, &m)
	if m.Sessions != 1 || len(m.ResolveMs) != 0 {
		t.Fatalf("idle-session metrics: sessions=%d resolve_ms=%+v", m.Sessions, m.ResolveMs)
	}
}

func TestDaemonSnapshotRestoreRoundTrip(t *testing.T) {
	srv := testServer(t)
	doc := instanceDoc(t, 32)
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "src", K: 4, Instance: doc}, http.StatusCreated, nil)
	do(t, "POST", srv.URL+"/v1/sessions/src/batch", batchReq{Mutations: []ses.Mutation{
		ses.ForbidOp(0, 1),
		ses.AddCompetingOp(ses.CompetingEvent{Interval: 0, Name: "rival"}, map[int]float64{2: 0.6}),
	}}, http.StatusOK, nil)

	// Fetch the JSON snapshot.
	resp, err := http.Get(srv.URL + "/v1/sessions/src/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d err %v", resp.StatusCode, err)
	}

	// Restore it as a new session on the same daemon.
	restoreResp, err := http.Post(srv.URL+"/v1/sessions/copy/restore", "application/json", bytes.NewReader(snap1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, restoreResp.Body)
	restoreResp.Body.Close()
	if restoreResp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d", restoreResp.StatusCode)
	}

	// Both sessions serve the same schedule, and the copy's snapshot is
	// byte-identical up to the name field (names differ; strip them).
	var a, b scheduleResp
	do(t, "GET", srv.URL+"/v1/sessions/src/schedule", nil, http.StatusOK, &a)
	do(t, "GET", srv.URL+"/v1/sessions/copy/schedule", nil, http.StatusOK, &b)
	if a.Utility != b.Utility || fmt.Sprint(a.Assignments) != fmt.Sprint(b.Assignments) {
		t.Fatalf("restored session differs: %+v vs %+v", a, b)
	}
	resp2, err := http.Get(srv.URL + "/v1/sessions/copy/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	strip := func(b []byte) string {
		return strings.Replace(string(b), `"name":"copy"`, `"name":"src"`, 1)
	}
	if strip(snap2) != string(snap1) {
		t.Fatalf("snapshot of restored session differs:\n%s\nvs\n%s", snap1, snap2)
	}

	// Restore over an existing session requires replace=true.
	conflict, err := http.Post(srv.URL+"/v1/sessions/copy/restore", "application/json", bytes.NewReader(snap1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, conflict.Body)
	conflict.Body.Close()
	if conflict.StatusCode != http.StatusConflict {
		t.Fatalf("restore conflict: status %d", conflict.StatusCode)
	}
	replace, err := http.Post(srv.URL+"/v1/sessions/copy/restore?replace=true", "application/json", bytes.NewReader(snap1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, replace.Body)
	replace.Body.Close()
	if replace.StatusCode != http.StatusOK {
		t.Fatalf("restore replace: status %d", replace.StatusCode)
	}

	// Binary snapshot round-trips through the restore endpoint too.
	bresp, err := http.Get(srv.URL + "/v1/sessions/src/snapshot?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.Header.Get("Content-Type") != "application/octet-stream" || len(bin) == 0 {
		t.Fatalf("binary snapshot: %q, %d bytes", bresp.Header.Get("Content-Type"), len(bin))
	}
	brestore, err := http.Post(srv.URL+"/v1/sessions/bin/restore", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, brestore.Body)
	brestore.Body.Close()
	if brestore.StatusCode != http.StatusOK {
		t.Fatalf("binary restore: status %d", brestore.StatusCode)
	}
}

func TestDaemonTimeoutFlowsIntoResolve(t *testing.T) {
	srv := testServer(t)
	// Large enough that a 1ns deadline certainly fires during solving.
	inst := sestest.Random(sestest.Config{Users: 400, Events: 60, Intervals: 12, Seed: 33})
	doc, err := dataset.NewInstanceDoc(inst)
	if err != nil {
		t.Fatal(err)
	}
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "big", K: 30, Instance: doc}, http.StatusCreated, nil)

	// An immediate deadline fires during the one-shot scoring phase:
	// nothing to commit, so the daemon reports a timeout.
	do(t, "POST", srv.URL+"/v1/sessions/big/resolve?timeout=1ns", nil, http.StatusGatewayTimeout, nil)

	// Short-but-plausible deadlines land either in scoring (504) or in
	// the anytime selection, which commits the feasible best-so-far
	// with Stopped set. Both prove the request deadline reaches the
	// solver; anything else is a bug.
	for _, timeout := range []string{"200us", "1ms", "5ms"} {
		req, err := http.NewRequest("POST", srv.URL+"/v1/sessions/big/resolve?timeout="+timeout, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			// fine: deadline during scoring
		case http.StatusOK:
			var delta ses.Delta
			if err := json.Unmarshal(raw, &delta); err != nil {
				t.Fatal(err)
			}
			if delta.Stopped != "" && delta.Stopped != ses.StoppedDeadline {
				t.Fatalf("timeout %s: unexpected stop reason %q", timeout, delta.Stopped)
			}
		default:
			t.Fatalf("timeout %s: status %d, body %s", timeout, resp.StatusCode, raw)
		}
	}

	// A generous timeout completes normally.
	var delta ses.Delta
	do(t, "POST", srv.URL+"/v1/sessions/big/resolve?timeout=1m", nil, http.StatusOK, &delta)
	if delta.Stopped != "" {
		t.Fatalf("generous timeout still stopped early: %+v", delta)
	}
	// Bad timeout strings are rejected.
	do(t, "POST", srv.URL+"/v1/sessions/big/resolve?timeout=soon", nil, http.StatusBadRequest, nil)
}

func TestDaemonRejectsGarbage(t *testing.T) {
	srv := testServer(t)
	do(t, "POST", srv.URL+"/v1/sessions", map[string]any{"name": "x"}, http.StatusBadRequest, nil)
	do(t, "POST", srv.URL+"/v1/sessions", map[string]any{"name": "x", "instance": map[string]any{"num_users": -4}}, http.StatusBadRequest, nil)
	do(t, "POST", srv.URL+"/v1/sessions/nope/resolve", nil, http.StatusNotFound, nil)
	do(t, "GET", srv.URL+"/v1/sessions/nope/schedule", nil, http.StatusNotFound, nil)
	do(t, "GET", srv.URL+"/v1/sessions/nope/snapshot", nil, http.StatusNotFound, nil)
	resp, err := http.Post(srv.URL+"/v1/sessions/x/restore", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d", resp.StatusCode)
	}
}

// TestDaemonObjectiveSelection: a session created with an objective
// reports it in its metadata, carries it in snapshots, and restores it
// into another daemon; bad specs are rejected up front.
func TestDaemonObjectiveSelection(t *testing.T) {
	srv := testServer(t)

	var meta ses.SessionMeta
	do(t, "POST", srv.URL+"/v1/sessions", map[string]any{
		"name": "fair", "k": 3, "objective": "fairness:0.7", "instance": instanceDoc(t, 5),
	}, http.StatusCreated, &meta)
	if meta.Objective != "fairness:0.7" {
		t.Fatalf("create meta objective = %q", meta.Objective)
	}

	// Default objective is omega and shows up as such.
	do(t, "POST", srv.URL+"/v1/sessions", map[string]any{
		"name": "plain", "k": 3, "instance": instanceDoc(t, 6),
	}, http.StatusCreated, &meta)
	if meta.Objective != "omega" {
		t.Fatalf("default meta objective = %q", meta.Objective)
	}

	// Unknown spec: 400 before any session is created.
	do(t, "POST", srv.URL+"/v1/sessions", map[string]any{
		"name": "bad", "k": 3, "objective": "maximize-vibes", "instance": instanceDoc(t, 7),
	}, http.StatusBadRequest, nil)
	do(t, "GET", srv.URL+"/v1/sessions/bad", nil, http.StatusNotFound, nil)

	// Resolve, snapshot, and restore into a second daemon: the
	// objective travels with the session.
	do(t, "POST", srv.URL+"/v1/sessions/fair/resolve", nil, http.StatusOK, nil)
	resp, err := http.Get(srv.URL + "/v1/sessions/fair/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(raw), `"objective":"fairness:0.7"`) {
		t.Fatalf("snapshot does not carry the objective: %s", raw)
	}

	other := testServer(t)
	req, err := http.NewRequest("POST", other.URL+"/v1/sessions/fair/restore", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("restore status %d: %s", resp2.StatusCode, body)
	}
	var restored ses.SessionMeta
	if err := json.NewDecoder(resp2.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	if restored.Objective != "fairness:0.7" {
		t.Fatalf("restored meta objective = %q", restored.Objective)
	}
}
