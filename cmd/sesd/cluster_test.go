package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ses"
	"ses/internal/cluster"
	"ses/internal/session"
)

// daemonSwap lets each httptest server exist (so its URL is known to
// every peer) before the daemon behind it does.
type daemonSwap struct{ h atomic.Value }

func (d *daemonSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := d.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// daemonCluster boots n full sesd handler stacks — durable store,
// pipeline, cluster node, routes — clustered over httptest servers.
type daemonCluster struct {
	ids     []string
	urls    map[string]string
	nodes   map[string]*cluster.Node
	servers map[string]*httptest.Server
}

// kill simulates kill -9 on one member: its server vanishes and its
// store is abandoned mid-flight (no drain, no final checkpoint).
func (dc *daemonCluster) kill(id string) {
	dc.nodes[id].Close()
	dc.servers[id].CloseClientConnections()
	dc.servers[id].Close()
}

func newDaemonCluster(t *testing.T, n int, tweaks ...func(*cluster.NodeOptions)) *daemonCluster {
	t.Helper()
	dc := &daemonCluster{
		urls:    map[string]string{},
		nodes:   map[string]*cluster.Node{},
		servers: map[string]*httptest.Server{},
	}
	swaps := map[string]*daemonSwap{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		dc.ids = append(dc.ids, id)
		sw := &daemonSwap{}
		swaps[id] = sw
		srv := httptest.NewServer(sw)
		dc.servers[id] = srv
		dc.urls[id] = srv.URL
	}
	var pipes []*ses.Pipeline
	var stores []*ses.DurableStore
	for _, id := range dc.ids {
		// Each member runs with full observability, exactly like a
		// production `sesd` (obs defaults on): node-local tracer wired
		// into both the handler stack and the replication layer.
		o := ses.NewObservability(ses.ObservabilityOptions{})
		d, err := ses.OpenStore(ses.WithDurability(t.TempDir()), ses.WithWorkers(1), ses.WithObservability(o))
		if err != nil {
			t.Fatal(err)
		}
		opts := cluster.NodeOptions{
			ID:      id,
			Peers:   dc.urls,
			Session: session.Options{Workers: 1},
			Shipper: cluster.ShipperOptions{Poll: 2 * time.Millisecond, Heartbeat: 50 * time.Millisecond},
			Logf:    t.Logf,
			Tracer:  o.Tracer,
		}
		for _, tw := range tweaks {
			tw(&opts)
		}
		node, err := cluster.NewNode(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		pipe := ses.NewPipeline(d, ses.WithResolveWorkers(1))
		srv := newServer(d, pipe)
		srv.obs = o
		srv.walStats = d.WALStats
		srv.node = node
		swaps[id].h.Store(srv.routes())
		node.Start()
		dc.nodes[id] = node
		pipes, stores = append(pipes, pipe), append(stores, d)
	}
	// Teardown order matters: stop the follower clients first, then cut
	// the shipper streams they held open (a plain server Close would
	// wait on them forever), then close the stores.
	t.Cleanup(func() {
		for _, n := range dc.nodes {
			n.Close()
		}
		for _, srv := range dc.servers {
			srv.CloseClientConnections()
			srv.Close()
		}
		for i := range stores {
			pipes[i].Close()
			stores[i].Close()
		}
	})
	return dc
}

// TestDaemonClusterReplicaReads drives the full daemon surface of the
// cluster: a session created on n1 becomes readable on n2 via n2's
// warm replica (X-Ses-Replica-Of header), readiness and health report
// on every node, and /v1/metrics grows a replication section.
func TestDaemonClusterReplicaReads(t *testing.T) {
	dc := newDaemonCluster(t, 3)
	doc := instanceDoc(t, 77)

	var meta ses.SessionMeta
	do(t, "POST", dc.urls["n1"]+"/v1/sessions", createReq{Name: "repl-1", K: 3, Instance: doc}, http.StatusCreated, &meta)
	do(t, "POST", dc.urls["n1"]+"/v1/sessions/repl-1/batch", batchReq{}, http.StatusOK, nil)

	// The session lives only on n1; n2 must serve the read from its
	// replica once replication catches up.
	deadline := time.Now().Add(15 * time.Second)
	for {
		req, _ := http.NewRequest("GET", dc.urls["n2"]+"/v1/sessions/repl-1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var m ses.SessionMeta
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil {
			if got := resp.Header.Get("X-Ses-Replica-Of"); got != "n1" {
				t.Fatalf("replica read served with X-Ses-Replica-Of=%q, want n1", got)
			}
			if m.Name != "repl-1" || m.Resolves != meta.Resolves+1 {
				t.Fatalf("replica meta = %+v, want name repl-1 with %d resolves", m, meta.Resolves+1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n2 never served repl-1 from its replica (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Schedule reads fall back to the replica too.
	req, _ := http.NewRequest("GET", dc.urls["n3"]+"/v1/sessions/repl-1/schedule", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sched scheduleResp
	if err := json.NewDecoder(resp.Body).Decode(&sched); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("replica schedule read: status %d err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Ses-Replica-Of") != "n1" || len(sched.Assignments) == 0 {
		t.Fatalf("replica schedule read: of=%q assignments=%d", resp.Header.Get("X-Ses-Replica-Of"), len(sched.Assignments))
	}

	for _, id := range dc.ids {
		var ready map[string]string
		do(t, "GET", dc.urls[id]+"/v1/readyz", nil, http.StatusOK, &ready)
		if ready["status"] != "ready" {
			t.Errorf("%s readyz = %+v", id, ready)
		}
		resp, err := http.Get(dc.urls[id] + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s healthz: %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}

	var metrics struct {
		Replication *cluster.Metrics `json:"replication"`
	}
	do(t, "GET", dc.urls["n1"]+"/v1/metrics", nil, http.StatusOK, &metrics)
	if metrics.Replication == nil {
		t.Fatal("metrics missing replication section")
	}
	if metrics.Replication.NodeID != "n1" || metrics.Replication.RecordsShipped == 0 {
		t.Errorf("replication metrics = %+v, want node n1 with shipped records", metrics.Replication)
	}

	var status cluster.Status
	do(t, "GET", dc.urls["n1"]+"/v1/replication/status", nil, http.StatusOK, &status)
	if status.ID != "n1" || len(status.Streams) == 0 {
		t.Errorf("replication status = %+v, want id n1 with active streams", status)
	}
}

// TestDaemonClusterRouterList pins the real wire format between sesd
// and the router's list fan-merge: sessions created through a Router
// over real daemons must come back from the router's GET /v1/sessions
// with the counters -check-acks reads. (A stub emitting lowercase
// "name" keys once masked a case-sensitivity bug here.)
func TestDaemonClusterRouterList(t *testing.T) {
	dc := newDaemonCluster(t, 3)
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers:          dc.urls,
		HealthInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Start()
	front := httptest.NewServer(rt)
	defer front.Close()

	doc := instanceDoc(t, 11)
	names := []string{"list-a", "list-b", "list-c", "list-d"}
	for _, name := range names {
		do(t, "POST", front.URL+"/v1/sessions", createReq{Name: name, K: 3, Instance: doc}, http.StatusCreated, nil)
		do(t, "POST", front.URL+"/v1/sessions/"+name+"/batch", batchReq{Mutations: []ses.Mutation{
			ses.UpdateInterestOp(1, 0, 0.8),
		}}, http.StatusOK, nil)
	}

	var metas []ses.SessionMeta
	do(t, "GET", front.URL+"/v1/sessions", nil, http.StatusOK, &metas)
	byName := map[string]ses.SessionMeta{}
	for _, m := range metas {
		byName[m.Name] = m
	}
	for _, name := range names {
		m, ok := byName[name]
		if !ok {
			t.Errorf("session %s missing from the router's merged list %v", name, metas)
			continue
		}
		if m.Batches != 1 || m.Mutations != 1 || m.Resolves == 0 {
			t.Errorf("%s counters through the router = %+v, want 1 batch, 1 mutation, >=1 resolve", name, m)
		}
	}
}

// TestDaemonClusterSyncAck drives -replicate-ack 1 through the full
// daemon surface: mutations succeed while a follower confirms them,
// and degrade to an honest 503 — not a lying 200 — once the only
// follower is gone.
func TestDaemonClusterSyncAck(t *testing.T) {
	dc := newDaemonCluster(t, 2, func(o *cluster.NodeOptions) {
		o.ReplicateAck = 1
		o.AckWait = time.Second
	})
	doc := instanceDoc(t, 21)
	do(t, "POST", dc.urls["n1"]+"/v1/sessions", createReq{Name: "sync-1", K: 3, Instance: doc}, http.StatusCreated, nil)
	do(t, "POST", dc.urls["n1"]+"/v1/sessions/sync-1/batch", batchReq{Mutations: []ses.Mutation{
		ses.UpdateInterestOp(1, 0, 0.8),
	}}, http.StatusOK, nil)

	var metrics struct {
		Replication *cluster.Metrics `json:"replication"`
	}
	do(t, "GET", dc.urls["n1"]+"/v1/metrics", nil, http.StatusOK, &metrics)
	if m := metrics.Replication; m == nil || m.AckWaits < 2 || m.AckTimeouts != 0 {
		t.Fatalf("sync-ack metrics = %+v, want >=2 waits and 0 timeouts", metrics.Replication)
	}

	// Kill the only follower: the next mutation commits locally but
	// cannot be confirmed, so the daemon must answer 503.
	dc.kill("n2")
	resp, err := http.Post(dc.urls["n1"]+"/v1/sessions/sync-1/batch", "application/json",
		bytes.NewReader([]byte(`{"mutations":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with no live follower: status %d body %s, want 503", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("replication unconfirmed")) {
		t.Errorf("503 body %q does not say the write is committed locally", raw)
	}
}

// TestDaemonClusterEpochFencing promotes a survivor at a fresh epoch,
// then proves a mutation stamped with an older router view is fenced
// with 409 while current (and unstamped operator) requests pass.
func TestDaemonClusterEpochFencing(t *testing.T) {
	dc := newDaemonCluster(t, 3)
	doc := instanceDoc(t, 31)
	do(t, "POST", dc.urls["n1"]+"/v1/sessions", createReq{Name: "fence-1", K: 3, Instance: doc}, http.StatusCreated, nil)

	// Wait for n2's replica of n1 to hold the session, then fail over.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(dc.urls["n2"] + "/v1/sessions/fence-1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fence-1 never replicated to n2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dc.kill("n1")
	do(t, "POST", dc.urls["n2"]+"/v1/replication/promote",
		map[string]any{"peer": "n1", "epoch": 2}, http.StatusOK, nil)

	batch := func(epoch string) int {
		t.Helper()
		req, err := http.NewRequest("POST", dc.urls["n2"]+"/v1/sessions/fence-1/batch",
			bytes.NewReader([]byte(`{"mutations":[]}`)))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != "" {
			req.Header.Set("X-Ses-Epoch", epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := batch("1"); got != http.StatusConflict {
		t.Errorf("mutation at stale epoch 1: status %d, want 409", got)
	}
	if got := batch("2"); got != http.StatusOK {
		t.Errorf("mutation at the current epoch: status %d, want 200", got)
	}
	if got := batch(""); got != http.StatusOK {
		t.Errorf("unstamped operator mutation: status %d, want 200", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n1=http://a:1,n2=http://b:2/, n3=http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"n1": "http://a:1", "n2": "http://b:2", "n3": "http://c:3"}
	if fmt.Sprint(peers) != fmt.Sprint(want) {
		t.Errorf("parsePeers = %v, want %v", peers, want)
	}
	for _, bad := range []string{"", "n1", "n1=", "=http://a", "n1=x,n1=y"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

// TestClusterFlagsValidated: cluster flags without a data dir (or half
// a pair) must fail fast rather than boot an unreplicated daemon.
func TestClusterFlagsValidated(t *testing.T) {
	ctx := t.Context()
	if err := run(ctx, []string{"-node-id", "n1", "-peers", "n1=http://x"}); err == nil {
		t.Error("cluster flags without -data-dir accepted")
	}
	if err := run(ctx, []string{"-data-dir", t.TempDir(), "-node-id", "n1"}); err == nil {
		t.Error("-node-id without -peers accepted")
	}
	if err := run(ctx, []string{"-data-dir", t.TempDir(), "-node-id", "n1", "-peers", "n2=http://x"}); err == nil {
		t.Error("peers without self accepted")
	}
}
