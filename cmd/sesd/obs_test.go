package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"ses"
	"ses/internal/cluster"
	"ses/internal/obs"
)

// obsTestServer is testServer with observability on — the default
// production shape — returning the Observability so tests can inspect
// the hub and tracer directly.
func obsTestServer(t *testing.T) (*httptest.Server, *ses.Observability) {
	t.Helper()
	o := ses.NewObservability(ses.ObservabilityOptions{})
	st := ses.NewStore(ses.WithWorkers(1), ses.WithObservability(o))
	pipe := ses.NewPipeline(st, ses.WithResolveWorkers(2))
	handler := newServer(st, pipe)
	handler.obs = o
	srv := httptest.NewServer(handler.routes())
	t.Cleanup(func() {
		srv.Close()
		pipe.Close()
	})
	return srv, o
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Data string
}

// readSSE parses a text/event-stream body into events on a channel,
// closing it when the stream ends.
func readSSE(body *bufio.Scanner, out chan<- sseEvent) {
	defer close(out)
	var ev sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if ev.Type != "" || ev.Data != "" {
				out <- ev
				ev = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = line[len("data: "):]
		}
	}
}

// nextEvent receives the next SSE event or fails the test.
func nextEvent(t *testing.T, ch <-chan sseEvent) (sseEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-ch:
		return ev, ok
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for an SSE event")
		return sseEvent{}, false
	}
}

// TestWatchSSELifecycle drives the full watch stream: subscribe, see
// the hello snapshot, see progress and commit events from a live
// batch, and observe the stream end — with the hub cleaned up — when
// the session is deleted.
func TestWatchSSELifecycle(t *testing.T) {
	srv, o := obsTestServer(t)
	doc := instanceDoc(t, 91)
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "fest", K: 3, Instance: doc}, http.StatusCreated, nil)

	// Unknown sessions 404 before any stream starts.
	do(t, "GET", srv.URL+"/v1/sessions/ghost/watch", nil, http.StatusNotFound, nil)

	resp, err := http.Get(srv.URL + "/v1/sessions/fest/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch Content-Type = %q, want text/event-stream", ct)
	}
	events := make(chan sseEvent, 64)
	go readSSE(bufio.NewScanner(resp.Body), events)

	hello, ok := nextEvent(t, events)
	if !ok || hello.Type != "hello" {
		t.Fatalf("first event = %+v, want hello", hello)
	}
	var meta ses.SessionMeta
	if err := json.Unmarshal([]byte(hello.Data), &meta); err != nil || meta.Name != "fest" {
		t.Fatalf("hello payload %q (err %v), want fest metadata", hello.Data, err)
	}
	if subs := o.Hub.Stats().Subscribers; subs != 1 {
		t.Fatalf("hub subscribers = %d, want 1", subs)
	}

	// A batch behind the live stream must surface progress (per solver
	// assignment) and exactly the committed delta.
	do(t, "POST", srv.URL+"/v1/sessions/fest/batch", batchReq{Mutations: []ses.Mutation{
		ses.UpdateInterestOp(1, 0, 0.9),
	}}, http.StatusOK, nil)
	var sawProgress, sawCommit bool
	for !sawCommit {
		ev, ok := nextEvent(t, events)
		if !ok {
			t.Fatal("stream ended before the commit event")
		}
		switch ev.Type {
		case "progress":
			sawProgress = true
			var p struct {
				Solver string `json:"solver"`
				Event  int    `json:"event"`
			}
			if err := json.Unmarshal([]byte(ev.Data), &p); err != nil || p.Solver == "" {
				t.Fatalf("progress payload %q (err %v)", ev.Data, err)
			}
		case "commit":
			sawCommit = true
			var c struct {
				Meta struct {
					Batches uint64 `json:"Batches"`
				} `json:"meta"`
			}
			if err := json.Unmarshal([]byte(ev.Data), &c); err != nil || c.Meta.Batches != 1 {
				t.Fatalf("commit payload %q (err %v), want Batches=1", ev.Data, err)
			}
		}
	}
	if !sawProgress {
		t.Error("no progress events arrived before the commit")
	}

	// Deleting the session must end the stream, not leak the subscriber.
	do(t, "DELETE", srv.URL+"/v1/sessions/fest", nil, http.StatusNoContent, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, open := <-events; !open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch stream still open after session delete")
		}
	}
	for o.Hub.Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hub subscribers = %d after stream end, want 0", o.Hub.Stats().Subscribers)
		}
		time.Sleep(time.Millisecond)
	}
}

// doTraced issues a request and returns the response's X-Ses-Trace
// header alongside the status code.
func doTraced(t *testing.T, method, url, sendID string) (traceID string, status int) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(`{"mutations":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sendID != "" {
		req.Header.Set("X-Ses-Trace", sendID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.Header.Get("X-Ses-Trace"), resp.StatusCode
}

// treeNames flattens a span tree into the set of span names.
func treeNames(tree *obs.TraceTree) map[string]bool {
	names := map[string]bool{}
	var walk func(nodes []*obs.SpanNode)
	walk = func(nodes []*obs.SpanNode) {
		for _, n := range nodes {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(tree.Spans)
	return names
}

// TestTraceEndpoints pins the trace surface: a batch request's trace
// tree spans handler → pipeline → session.resolve → engine.scoring,
// propagated IDs are adopted and echoed, and the list endpoint
// filters.
func TestTraceEndpoints(t *testing.T) {
	srv, _ := obsTestServer(t)
	doc := instanceDoc(t, 17)
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "traced", K: 3, Instance: doc}, http.StatusCreated, nil)

	// A client-supplied ID is adopted and echoed back.
	const foreign = "deadbeefcafef00d"
	id, status := doTraced(t, "POST", srv.URL+"/v1/sessions/traced/batch", foreign)
	if status != http.StatusOK || id != foreign {
		t.Fatalf("traced batch: status %d, echoed id %q, want 200/%q", status, id, foreign)
	}

	var tree obs.TraceTree
	do(t, "GET", srv.URL+"/v1/traces/"+foreign, nil, http.StatusOK, &tree)
	if tree.ID != foreign {
		t.Fatalf("trace id = %q, want %q", tree.ID, foreign)
	}
	names := treeNames(&tree)
	for _, want := range []string{obs.SpanHandler, obs.SpanPipeline, obs.SpanResolve, obs.SpanScoring, obs.SpanSelect} {
		if !names[want] {
			t.Errorf("trace tree missing span %q (have %v)", want, names)
		}
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != obs.SpanHandler {
		t.Fatalf("trace root forest = %+v, want a single handler root", tree.Spans)
	}

	// Without a supplied ID the daemon mints one and still serves it.
	id, status = doTraced(t, "POST", srv.URL+"/v1/sessions/traced/batch", "")
	if status != http.StatusOK || id == "" || id == foreign {
		t.Fatalf("untraced batch: status %d, minted id %q", status, id)
	}
	do(t, "GET", srv.URL+"/v1/traces/"+id, nil, http.StatusOK, &tree)

	// Listing: both traces are there, newest first; min-duration and
	// limit filter; junk parameters 400; unknown IDs 404.
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	do(t, "GET", srv.URL+"/v1/traces", nil, http.StatusOK, &list)
	if len(list.Traces) < 2 || list.Traces[0].ID != id {
		t.Fatalf("trace list = %+v, want >=2 newest-first (newest %s)", list.Traces, id)
	}
	do(t, "GET", srv.URL+"/v1/traces?limit=1", nil, http.StatusOK, &list)
	if len(list.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(list.Traces))
	}
	do(t, "GET", srv.URL+"/v1/traces?min=1h", nil, http.StatusOK, &list)
	if len(list.Traces) != 0 {
		t.Fatalf("min=1h returned %d traces, want 0", len(list.Traces))
	}
	do(t, "GET", srv.URL+"/v1/traces?min=bogus", nil, http.StatusBadRequest, nil)
	do(t, "GET", srv.URL+"/v1/traces?limit=-3", nil, http.StatusBadRequest, nil)
	do(t, "GET", srv.URL+"/v1/traces/nope", nil, http.StatusNotFound, nil)
}

// seriesRe matches one Prometheus sample line: name{labels} value.
// Label values are quoted strings that may themselves contain braces
// (route patterns like "GET /v1/sessions/{name}"), so the label part
// is parsed as quoted pairs, not as "anything up to the first }".
var seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? [^ ]+$`)

// TestDaemonPrometheusExposition scrapes /metrics after real traffic
// and checks the exposition is well-formed (every line parses, no
// series repeats) and that the key families the dashboards and CI
// grep for are present.
func TestDaemonPrometheusExposition(t *testing.T) {
	srv, _ := obsTestServer(t)
	doc := instanceDoc(t, 5)
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "prom", K: 3, Instance: doc}, http.StatusCreated, nil)
	do(t, "POST", srv.URL+"/v1/sessions/prom/resolve", nil, http.StatusOK, nil)
	do(t, "GET", srv.URL+"/v1/sessions/missing", nil, http.StatusNotFound, nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("exposition Content-Type = %q", ct)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var body strings.Builder
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q", line)
		}
		series := m[1] + m[2]
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
	}
	text := body.String()
	for _, want := range []string{
		`ses_http_requests_total{route="POST /v1/sessions",code="201"}`,
		`ses_http_errors_total{class="client"}`,
		`ses_resolve_stage_seconds_bucket{stage="session.resolve",le="+Inf"}`,
		"ses_sessions 1",
		"ses_pipeline_queue_depth",
		"ses_pipeline_executed_total",
		"ses_watch_subscribers 0",
		"ses_uptime_seconds",
		"ses_traces",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestErrorClassSplit pins the client/server error split in both the
// JSON metrics and the Prometheus exposition.
func TestErrorClassSplit(t *testing.T) {
	srv, _ := obsTestServer(t)
	do(t, "GET", srv.URL+"/v1/sessions/absent", nil, http.StatusNotFound, nil)
	do(t, "GET", srv.URL+"/v1/sessions/absent/schedule", nil, http.StatusNotFound, nil)

	var m metricsResp
	do(t, "GET", srv.URL+"/v1/metrics", nil, http.StatusOK, &m)
	if m.ErrorsClient != 2 || m.ErrorsServer != 0 {
		t.Fatalf("error split = client %d / server %d, want 2/0", m.ErrorsClient, m.ErrorsServer)
	}
	if m.Errors != m.ErrorsClient+m.ErrorsServer {
		t.Fatalf("errors %d != client %d + server %d", m.Errors, m.ErrorsClient, m.ErrorsServer)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var found bool
	for sc.Scan() {
		if sc.Text() == `ses_http_errors_total{class="client"} 2` {
			found = true
		}
	}
	if !found {
		t.Error(`exposition missing ses_http_errors_total{class="client"} 2`)
	}
}

// TestDashboardServed checks the embedded dashboard answers at /.
func TestDashboardServed(t *testing.T) {
	srv, _ := obsTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)
	var hasWatch bool
	for sc.Scan() {
		if strings.Contains(sc.Text(), "EventSource") {
			hasWatch = true
		}
	}
	if !hasWatch {
		t.Error("dashboard page has no EventSource watch wiring")
	}
}

// TestObsDisabledSurfacesOff pins the -obs=false shape: the trace and
// watch endpoints answer 404 and /metrics is absent, while the JSON
// surfaces keep working.
func TestObsDisabledSurfacesOff(t *testing.T) {
	srv := testServer(t) // no observability attached
	doc := instanceDoc(t, 3)
	do(t, "POST", srv.URL+"/v1/sessions", createReq{Name: "dark", K: 3, Instance: doc}, http.StatusCreated, nil)
	do(t, "GET", srv.URL+"/v1/traces", nil, http.StatusNotFound, nil)
	do(t, "GET", srv.URL+"/v1/traces/x", nil, http.StatusNotFound, nil)
	do(t, "GET", srv.URL+"/v1/sessions/dark/watch", nil, http.StatusNotFound, nil)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with obs off: status %d, want 404", resp.StatusCode)
	}
	do(t, "GET", srv.URL+"/v1/metrics", nil, http.StatusOK, nil)
}

// TestClusterTracePropagation proves one X-Ses-Trace ID follows a
// router-forwarded write onto the primary's trace ring (with its WAL
// fsync) AND onto the follower's ring as a remote replication.apply
// span — the end-to-end path the issue demands.
func TestClusterTracePropagation(t *testing.T) {
	dc := newDaemonCluster(t, 2)
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers:          dc.urls,
		HealthInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Start()
	front := httptest.NewServer(rt)
	defer front.Close()

	doc := instanceDoc(t, 47)
	do(t, "POST", front.URL+"/v1/sessions", createReq{Name: "span-1", K: 3, Instance: doc}, http.StatusCreated, nil)

	const traceID = "feedfacecafebeef"
	id, status := doTraced(t, "POST", front.URL+"/v1/sessions/span-1/batch", traceID)
	if status != http.StatusOK || id != traceID {
		t.Fatalf("routed batch: status %d, echoed id %q, want 200/%q", status, id, traceID)
	}

	// Exactly one node served the write: its ring holds the handler
	// root with the WAL fsync under it.
	fetch := func(node string) (*obs.TraceTree, bool) {
		resp, err := http.Get(dc.urls[node] + "/v1/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, false
		}
		var tree obs.TraceTree
		if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
			t.Fatal(err)
		}
		return &tree, true
	}
	var primary, follower string
	for _, node := range dc.ids {
		if tree, ok := fetch(node); ok && treeNames(tree)[obs.SpanHandler] {
			primary = node
		} else {
			follower = node
		}
	}
	if primary == "" {
		t.Fatal("no node's trace ring holds the routed write's handler span")
	}
	tree, _ := fetch(primary)
	names := treeNames(tree)
	for _, want := range []string{obs.SpanHandler, obs.SpanPipeline, obs.SpanResolve, obs.SpanWALFsync} {
		if !names[want] {
			t.Errorf("primary %s trace missing span %q (have %v)", primary, want, names)
		}
	}

	// The follower replays the shipped WAL record under the same trace
	// ID: poll until its ring shows the remote replication.apply span.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if tree, ok := fetch(follower); ok {
			var remote bool
			var walk func([]*obs.SpanNode)
			walk = func(nodes []*obs.SpanNode) {
				for _, n := range nodes {
					if n.Name == obs.SpanReplApply && n.Remote {
						remote = true
					}
					walk(n.Children)
				}
			}
			walk(tree.Spans)
			if remote {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower %s never recorded a remote %s span for trace %s", follower, obs.SpanReplApply, traceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
