// Command sesd is the SES scheduling daemon: an HTTP JSON front over
// ses.Store serving many concurrent organizer sessions from one
// process. Request contexts flow into the anytime solvers, so a
// client deadline (or the ?timeout query) turns a long resolve into a
// committed best-so-far instead of wasted work.
//
// Usage:
//
//	sesd [-addr :8080] [-workers W]
//
// API (all bodies JSON; see the README for a curl walkthrough):
//
//	POST   /v1/sessions                     {"name","k","instance":{...}}  create a session
//	                                        (+"objective":"omega|attendance[:θ]|fairness[:λ]")
//	GET    /v1/sessions                     list session metadata
//	GET    /v1/sessions/{name}              one session's metadata
//	DELETE /v1/sessions/{name}              drop a session
//	POST   /v1/sessions/{name}/resolve      re-solve incrementally [?timeout=200ms]
//	POST   /v1/sessions/{name}/batch        {"mutations":[...]}  mutate + one resolve [?timeout=200ms]
//	GET    /v1/sessions/{name}/schedule     committed schedule + utility
//	GET    /v1/sessions/{name}/snapshot     versioned snapshot [?format=binary]
//	POST   /v1/sessions/{name}/restore      snapshot document  [?replace=true]
//	GET    /v1/metrics                      daemon + per-session counters
//	GET    /healthz                         liveness
//
// The instance document is the same JSON sesgen writes; a snapshot
// fetched from one daemon restores into another (or into a library
// ses.Store) unchanged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ses"
	"ses/internal/dataset"
	"ses/internal/stats"
)

func main() {
	fs := flag.NewFlagSet("sesd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "goroutines for initial scoring per resolve (0 = all cores)")
	fs.Parse(os.Args[1:])

	srv := newServer(ses.NewStore(ses.WithWorkers(*workers)))
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shCtx)
	}()
	log.Printf("sesd: listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sesd: %v", err)
	}
}

// server wires the store to the HTTP surface and keeps the daemon
// metrics.
type server struct {
	store *ses.Store
	start time.Time

	requests atomic.Uint64
	resolves atomic.Uint64
	batches  atomic.Uint64
	errors   atomic.Uint64

	// lat is a bounded ring of resolve latencies (seconds) backing the
	// /v1/metrics percentiles.
	latMu sync.Mutex
	lat   []float64
	latAt int
}

const latRing = 4096

func newServer(st *ses.Store) *server {
	return &server{store: st, start: time.Now()}
}

// routes builds the method+pattern mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("GET /v1/sessions", s.listSessions)
	mux.HandleFunc("GET /v1/sessions/{name}", s.getSession)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{name}/resolve", s.resolveSession)
	mux.HandleFunc("POST /v1/sessions/{name}/batch", s.batchSession)
	mux.HandleFunc("GET /v1/sessions/{name}/schedule", s.getSchedule)
	mux.HandleFunc("GET /v1/sessions/{name}/snapshot", s.getSnapshot)
	mux.HandleFunc("POST /v1/sessions/{name}/restore", s.restoreSession)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON emits one JSON response.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to a JSON error body.
func (s *server) writeErr(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusOf classifies store errors.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ses.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ses.ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		// The deadline fired during a one-shot phase (scoring), where
		// no feasible best-so-far exists to commit; mid-selection the
		// resolve would instead have committed with Stopped set.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

// reqContext applies the optional ?timeout=DURATION to the request
// context; the deadline flows into the anytime resolve.
func reqContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	q := r.URL.Query().Get("timeout")
	if q == "" {
		return r.Context(), func() {}, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil || d <= 0 {
		return nil, nil, fmt.Errorf("bad timeout %q", q)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// createReq is the body of POST /v1/sessions.
type createReq struct {
	Name string `json:"name"`
	K    int    `json:"k"`
	// Objective selects what the session maximizes: "omega" (default),
	// "attendance[:theta]" or "fairness[:blend]". It becomes part of
	// the session's state and travels in its snapshots.
	Objective string               `json:"objective,omitempty"`
	Instance  *dataset.InstanceDoc `json:"instance"`
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Name == "" || req.Instance == nil {
		s.writeErr(w, http.StatusBadRequest, errors.New("name and instance are required"))
		return
	}
	obj, err := ses.ParseObjective(req.Objective)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	inst, err := req.Instance.Instance()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.CreateWithObjective(req.Name, inst, req.K, obj); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	meta, err := s.store.Meta(req.Name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, meta)
}

func (s *server) listSessions(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.store.Metas())
}

func (s *server) getSession(w http.ResponseWriter, r *http.Request) {
	meta, err := s.store.Meta(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, meta)
}

func (s *server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("name")); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// observeResolve records one resolve latency.
func (s *server) observeResolve(d time.Duration) {
	s.resolves.Add(1)
	s.latMu.Lock()
	if len(s.lat) < latRing {
		s.lat = append(s.lat, d.Seconds())
	} else {
		s.lat[s.latAt%latRing] = d.Seconds()
	}
	s.latAt++
	s.latMu.Unlock()
}

func (s *server) resolveSession(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := reqContext(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	start := time.Now()
	delta, err := s.store.Resolve(ctx, r.PathValue("name"))
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.observeResolve(time.Since(start))
	s.writeJSON(w, http.StatusOK, delta)
}

// batchReq is the body of POST /v1/sessions/{name}/batch.
type batchReq struct {
	Mutations []ses.Mutation `json:"mutations"`
}

func (s *server) batchSession(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := reqContext(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var req batchReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	start := time.Now()
	res, err := s.store.ApplyBatch(ctx, r.PathValue("name"), req.Mutations)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.observeResolve(time.Since(start))
	s.batches.Add(1)
	s.writeJSON(w, http.StatusOK, res)
}

// scheduleResp is the body of GET /v1/sessions/{name}/schedule.
type scheduleResp struct {
	Assignments []ses.Assignment `json:"assignments"`
	Utility     float64          `json:"utility"`
}

func (s *server) getSchedule(w http.ResponseWriter, r *http.Request) {
	sched, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, scheduleResp{Assignments: sched.Schedule(), Utility: sched.Utility()})
}

func (s *server) getSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	state, err := s.store.Snapshot(name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	doc, err := ses.NewSnapshot(name, state)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("format") == "binary" {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := ses.EncodeSnapshotBinary(w, doc); err != nil {
			log.Printf("sesd: writing binary snapshot: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := ses.EncodeSnapshot(w, doc); err != nil {
		log.Printf("sesd: writing snapshot: %v", err)
	}
}

func (s *server) restoreSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var doc *ses.Snapshot
	var err error
	mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt == "application/octet-stream" {
		doc, err = ses.DecodeSnapshotBinary(r.Body)
	} else {
		doc, err = ses.DecodeSnapshot(r.Body)
	}
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	state, err := doc.State()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	replace, _ := strconv.ParseBool(r.URL.Query().Get("replace"))
	if err := s.store.Restore(name, state, replace); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	meta, err := s.store.Meta(name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, meta)
}

// metricsResp is the body of GET /v1/metrics.
type metricsResp struct {
	UptimeSec float64            `json:"uptime_sec"`
	Sessions  int                `json:"sessions"`
	Requests  uint64             `json:"requests"`
	Resolves  uint64             `json:"resolves"`
	Batches   uint64             `json:"batches"`
	Errors    uint64             `json:"errors"`
	ResolveMs map[string]float64 `json:"resolve_latency_ms"`
	Metas     []ses.SessionMeta  `json:"session_metas"`
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.latMu.Lock()
	lat := append([]float64(nil), s.lat...)
	s.latMu.Unlock()
	sort.Float64s(lat)
	resolveMs := map[string]float64{}
	if len(lat) > 0 {
		for _, p := range []float64{50, 90, 99} {
			resolveMs[fmt.Sprintf("p%.0f", p)] = stats.PercentileSorted(lat, p) * 1000
		}
		resolveMs["max"] = lat[len(lat)-1] * 1000
	}
	s.writeJSON(w, http.StatusOK, metricsResp{
		UptimeSec: time.Since(s.start).Seconds(),
		Sessions:  s.store.Len(),
		Requests:  s.requests.Load(),
		Resolves:  s.resolves.Load(),
		Batches:   s.batches.Load(),
		Errors:    s.errors.Load(),
		ResolveMs: resolveMs,
		Metas:     s.store.Metas(),
	})
}
