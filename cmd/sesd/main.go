// Command sesd is the SES scheduling daemon: an HTTP JSON front over
// ses.Store serving many concurrent organizer sessions from one
// process. Request contexts flow into the anytime solvers, so a
// client deadline (or the ?timeout query) turns a long resolve into a
// committed best-so-far instead of wasted work.
//
// Usage:
//
//	sesd [-addr :8080] [-workers W]
//	     [-resolve-workers N] [-resolve-queue N]
//	     [-data-dir DIR] [-sync always|interval|none]
//	     [-sync-interval 50ms] [-checkpoint-every 1024]
//	     [-group-commit] [-drain 5s]
//	     [-node-id ID -peers ID=URL,ID=URL,...] [-lag-bound BYTES]
//	     [-replicate-ack N] [-replicate-ack-wait 2s]
//	     [-obs=true] [-trace-ring 512] [-slow-trace 0]
//	     [-pprof ADDR]
//
// With -data-dir the daemon serves a durable store: every
// acknowledged create/delete/batch/resolve/restore is appended to a
// per-shard write-ahead log under DIR before the response is sent
// (fsynced per -sync), boot recovers the acknowledged state from the
// log, and SIGTERM/SIGINT shuts down gracefully — stop accepting,
// drain in-flight requests (once -drain expires their contexts are
// cancelled: those resolves abort without committing and the previous
// schedules stay current), write a final checkpoint, exit 0. Inspect
// the log offline with seswal. -group-commit batches concurrent
// SyncAlways appenders into shared fsyncs (one fsync per commit-queue
// batch instead of one per append).
//
// With -node-id and -peers the daemon joins a replicated cluster (see
// ses/internal/cluster and the README's Cluster section): it ships its
// WAL to every peer over POST /v1/replication/stream, follows every
// peer's WAL into warm in-memory replicas, answers GET reads for
// peers' sessions from those replicas, and serves the replication
// status/promote endpoints the sesrouter failover proxy drives.
// /v1/readyz reports ready once recovery has finished and every
// connected replication stream is within -lag-bound bytes of its
// primary.
//
// Replication ships asynchronously by default: a 200 means the write
// is durable on this node only. -replicate-ack N withholds each
// mutation's response until N followers have durably applied the
// shipped record; if they don't confirm within -replicate-ack-wait
// the daemon answers 503 (the write IS committed locally — only its
// replication is unconfirmed) instead of acknowledging a write that
// could still die with this node. Clustered mutations are also
// epoch-fenced: requests stamped (by sesrouter) with an X-Ses-Epoch
// below this node's promotion epoch get 409, so a router acting on a
// stale membership view cannot land writes on a demoted primary.
//
// Observability is on by default (-obs=false turns it off): every
// mutating request runs under a trace whose ID travels in the
// X-Ses-Trace header (sesrouter stamps one when forwarding, so one ID
// spans a routed write and the follower's replication apply), the
// bounded in-memory trace ring is served at GET /v1/traces and
// /v1/traces/{id}, Prometheus text exposition is served at
// GET /metrics next to the JSON /v1/metrics, live per-session
// progress streams as server-sent events from
// GET /v1/sessions/{name}/watch, and GET / serves a single-file live
// dashboard. -slow-trace logs the full span tree of any request
// slower than the threshold; -pprof ADDR serves net/http/pprof on a
// separate listener that is never reachable through the serving mux.
//
// Resolve and batch requests run on a resolve pipeline: back-to-back
// requests against the same session coalesce into one incremental
// resolve, independent sessions resolve on -resolve-workers cores,
// and past -resolve-queue pending requests the daemon sheds load with
// 503 (admission control; queue depth is visible in /v1/metrics).
// Requests carrying an explicit ?timeout bypass the pipeline so the
// deadline can flow into their own anytime solve.
//
// API (all bodies JSON; see the README for a curl walkthrough):
//
//	POST   /v1/sessions                     {"name","k","instance":{...}}  create a session
//	                                        (+"objective":"omega|attendance[:θ]|fairness[:λ]")
//	GET    /v1/sessions                     list session metadata
//	GET    /v1/sessions/{name}              one session's metadata
//	DELETE /v1/sessions/{name}              drop a session
//	POST   /v1/sessions/{name}/resolve      re-solve incrementally [?timeout=200ms]
//	POST   /v1/sessions/{name}/batch        {"mutations":[...]}  mutate + one resolve [?timeout=200ms]
//	GET    /v1/sessions/{name}/schedule     committed schedule + utility
//	GET    /v1/sessions/{name}/snapshot     versioned snapshot [?format=binary]
//	POST   /v1/sessions/{name}/restore      snapshot document  [?replace=true]
//	GET    /v1/sessions/{name}/watch        live progress + commits (server-sent events)
//	GET    /v1/metrics                      daemon + per-session counters (JSON)
//	GET    /metrics                         Prometheus text exposition
//	GET    /v1/traces                       recent traces [?min=10ms&limit=50]
//	GET    /v1/traces/{id}                  one trace's span tree
//	GET    /                                live dashboard (single embedded page)
//	GET    /healthz                         liveness
//	GET    /v1/healthz                      liveness (alias)
//	GET    /v1/readyz                       readiness: recovered + replication lag in bound
//	POST   /v1/replication/stream           WAL shipping stream (clustered daemons)
//	GET    /v1/replication/status           replication cursors, lag, failover history
//	POST   /v1/replication/promote          adopt a dead peer's sessions
//
// The instance document is the same JSON sesgen writes; a snapshot
// fetched from one daemon restores into another (or into a library
// ses.Store) unchanged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"mime"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ses"
	"ses/internal/cluster"
	"ses/internal/dataset"
	"ses/internal/obs"
	"ses/internal/session"
	"ses/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		log.Fatalf("sesd: %v", err)
	}
}

// storeAPI is the store surface the daemon serves. Both the
// memory-only *ses.Store and the durable *ses.DurableStore satisfy
// it, so every handler is durability-agnostic.
type storeAPI interface {
	CreateWithObjective(name string, inst *ses.Instance, k int, obj ses.Objective) error
	Restore(name string, st *ses.SessionState, replace bool) error
	Delete(name string) error
	Get(name string) (*ses.Scheduler, error)
	Meta(name string) (ses.SessionMeta, error)
	Metas() []ses.SessionMeta
	Len() int
	Snapshot(name string) (*ses.SessionState, error)
	Resolve(ctx context.Context, name string) (*ses.Delta, error)
	ApplyBatch(ctx context.Context, name string, muts []ses.Mutation) (*ses.BatchResult, error)
}

// run parses flags, opens the (possibly durable) store, and serves
// until ctx is cancelled by a signal.
func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sesd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "goroutines for initial scoring per resolve (0 = all cores)")
	resolveWorkers := fs.Int("resolve-workers", 0, "sessions resolving concurrently on the pipeline (0 = all cores)")
	resolveQueue := fs.Int("resolve-queue", 0, "pending pipeline requests before 503s (0 = 1024, <0 unbounded)")
	dataDir := fs.String("data-dir", "", "write-ahead log directory; empty serves memory-only")
	syncSpec := fs.String("sync", "always", "WAL sync policy: always, interval or none")
	syncIvl := fs.Duration("sync-interval", 0, "flush period under -sync interval (0 = 50ms)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint a shard after N records (0 = 1024, <0 disables)")
	groupCommit := fs.Bool("group-commit", false, "amortize SyncAlways fsyncs across concurrent appenders")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget for in-flight requests")
	nodeID := fs.String("node-id", "", "this node's cluster identity (requires -peers and -data-dir)")
	peersSpec := fs.String("peers", "", "cluster membership as ID=URL,ID=URL,... (must include -node-id)")
	lagBound := fs.Int64("lag-bound", 0, "replication backlog bytes before /v1/readyz reports unready (0 = 4MiB, <0 unbounded)")
	replicateAck := fs.Int("replicate-ack", 0, "followers that must durably apply each mutation before its response (0 = async replication)")
	ackWait := fs.Duration("replicate-ack-wait", 0, "bound on a synchronous-ack wait before the daemon answers 503 (0 = 2s)")
	obsOn := fs.Bool("obs", true, "request tracing, /metrics exposition and watch streaming")
	traceRing := fs.Int("trace-ring", 0, "finished traces retained for /v1/traces (0 = 512)")
	slowTrace := fs.Duration("slow-trace", 0, "log the span tree of requests at least this slow (0 = off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
	fs.Parse(args)

	var o *ses.Observability
	if *obsOn {
		o = ses.NewObservability(ses.ObservabilityOptions{
			TraceRing: *traceRing,
			SlowTrace: *slowTrace,
		})
	}
	if *pprofAddr != "" {
		// pprof rides the DefaultServeMux on its own listener; the
		// serving mux below never exposes it.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("sesd: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("sesd: pprof server: %v", err)
			}
		}()
	}

	var st storeAPI
	var durable *ses.DurableStore
	if *dataDir != "" {
		pol, err := ses.ParseSyncPolicy(*syncSpec)
		if err != nil {
			return err
		}
		d, err := ses.OpenStore(
			ses.WithDurability(*dataDir),
			ses.WithSyncPolicy(pol),
			ses.WithSyncInterval(*syncIvl),
			ses.WithCheckpointEvery(*ckptEvery),
			ses.WithGroupCommit(ses.GroupCommit{Enabled: *groupCommit}),
			ses.WithWorkers(*workers),
			ses.WithObservability(o),
		)
		if err != nil {
			return err
		}
		log.Printf("sesd: recovered %d sessions from %s (sync=%s group-commit=%v)",
			d.Len(), *dataDir, pol, *groupCommit)
		durable, st = d, d
	} else {
		// Catch a silently-ignored durability flag: an operator who
		// tunes -sync but forgets -data-dir must not discover the
		// daemon was memory-only at the first crash.
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "sync", "sync-interval", "checkpoint-every", "group-commit":
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("%s only apply with -data-dir", strings.Join(stray, ", "))
		}
		st = ses.NewStore(ses.WithWorkers(*workers), ses.WithObservability(o))
	}

	var node *cluster.Node
	if *nodeID != "" || *peersSpec != "" {
		if durable == nil {
			return errors.New("-node-id/-peers need -data-dir: only a durable store can replicate its WAL")
		}
		if *nodeID == "" || *peersSpec == "" {
			return errors.New("-node-id and -peers go together")
		}
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			return err
		}
		n, err := cluster.NewNode(durable, cluster.NodeOptions{
			ID:           *nodeID,
			Peers:        peers,
			LagBound:     *lagBound,
			ReplicateAck: *replicateAck,
			AckWait:      *ackWait,
			Session:      session.Options{Workers: *workers},
			Logf:         log.Printf,
			Tracer:       tracerOf(o),
		})
		if err != nil {
			return err
		}
		node = n
		if *replicateAck > 0 {
			log.Printf("sesd: cluster node %s in a %d-node ring (replicate-ack=%d)", *nodeID, len(peers), *replicateAck)
		} else {
			log.Printf("sesd: cluster node %s in a %d-node ring", *nodeID, len(peers))
		}
	} else if *replicateAck != 0 || *ackWait != 0 {
		return errors.New("-replicate-ack/-replicate-ack-wait only apply with -node-id/-peers")
	}

	pipe := ses.NewPipeline(st,
		ses.WithResolveWorkers(*resolveWorkers),
		ses.WithResolveQueue(*resolveQueue))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		pipe.Close()
		if durable != nil {
			durable.Close()
		}
		return err
	}
	log.Printf("sesd: listening on %s", ln.Addr())
	return serve(ctx, ln, st, pipe, durable, node, o, *drain)
}

// tracerOf unwraps the tracer for layers that take one directly (nil
// when observability is off).
func tracerOf(o *ses.Observability) *obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// parsePeers parses the -peers spec: comma-separated ID=URL pairs.
func parsePeers(spec string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want ID=URL)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return peers, nil
}

// serve runs the HTTP front until ctx is cancelled, then shuts down
// gracefully: the listener stops accepting, in-flight requests drain,
// and a durable store writes its final checkpoint before serve
// returns nil. If the drain budget expires first, the remaining
// requests' contexts are cancelled: their resolves abort WITHOUT
// committing (cancellation, unlike a deadline, never commits a
// best-so-far) — the previous schedules stay current and batch
// mutations stay staged for the next resolve.
func serve(ctx context.Context, ln net.Listener, st storeAPI, pipe *ses.Pipeline, durable *ses.DurableStore, node *cluster.Node, o *ses.Observability, drain time.Duration) error {
	srv := newServer(st, pipe)
	srv.obs = o
	if durable != nil {
		srv.walStats = durable.WALStats
	}
	if node != nil {
		srv.node = node
		node.Start()
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	httpSrv := &http.Server{
		Handler:     srv.routes(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		if node != nil {
			node.Close()
		}
		pipe.Close()
		if durable != nil {
			durable.Close()
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}

	log.Printf("sesd: shutdown requested; draining in-flight requests (budget %s)", drain)
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// The budget expired with requests still running: cancel their
		// contexts (the resolves abort without committing; previous
		// schedules stay current) and close the server.
		baseCancel()
		httpSrv.Close()
	}
	if node != nil {
		// Stop following peers before the final checkpoint so no apply
		// races the durable store's close.
		node.Close()
	}
	pipe.Close()
	if durable != nil {
		log.Printf("sesd: writing final checkpoint")
		if err := durable.Close(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
	}
	log.Printf("sesd: bye")
	return nil
}

// server wires the store to the HTTP surface and keeps the daemon
// metrics.
type server struct {
	store storeAPI
	// pipeline coalesces and parallelizes resolve/batch traffic;
	// requests with an explicit deadline go straight to the store so
	// the deadline reaches their own anytime solve.
	pipeline *ses.Pipeline
	// walStats reports the durable store's cumulative WAL counters
	// (nil on a memory-only daemon).
	walStats func() ses.WALStats
	// node is the replication layer on a clustered daemon (nil
	// otherwise): it serves /v1/replication/*, gates /v1/readyz, and
	// backs replica reads for sessions whose primary is a peer.
	node  *cluster.Node
	start time.Time
	// obs is the observability bundle (nil when -obs=false): trace
	// ring behind /v1/traces, Prometheus registry behind /metrics, and
	// the watch hub behind the SSE endpoint.
	obs *ses.Observability
	// regOnce guards Prometheus family registration: routes() may run
	// more than once against one registry in tests.
	regOnce sync.Once
	// httpRequests/httpErrors are the live Prometheus vectors (nil
	// without obs; the instruments are nil-safe).
	httpRequests *obs.CounterVec
	httpErrors   *obs.CounterVec

	requests atomic.Uint64
	resolves atomic.Uint64
	batches  atomic.Uint64
	errors   atomic.Uint64
	// errorsClient/errorsServer split errors by responsibility:
	// client = 4xx and 499 disconnects, server = 5xx.
	errorsClient atomic.Uint64
	errorsServer atomic.Uint64

	// lat is a bounded ring of resolve latencies (seconds) backing the
	// /v1/metrics percentiles.
	latMu sync.Mutex
	lat   []float64
	latAt int
}

const latRing = 4096

func newServer(st storeAPI, pipe *ses.Pipeline) *server {
	return &server{store: st, pipeline: pipe, start: time.Now()}
}

// routes builds the method+pattern mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("GET /v1/sessions", s.listSessions)
	mux.HandleFunc("GET /v1/sessions/{name}", s.getSession)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{name}/resolve", s.resolveSession)
	mux.HandleFunc("POST /v1/sessions/{name}/batch", s.batchSession)
	mux.HandleFunc("GET /v1/sessions/{name}/schedule", s.getSchedule)
	mux.HandleFunc("GET /v1/sessions/{name}/snapshot", s.getSnapshot)
	mux.HandleFunc("POST /v1/sessions/{name}/restore", s.restoreSession)
	mux.HandleFunc("GET /v1/sessions/{name}/watch", s.watchSession)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /v1/traces", s.listTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.getTrace)
	healthz := func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	}
	mux.HandleFunc("GET /healthz", healthz)
	mux.HandleFunc("GET /v1/healthz", healthz)
	mux.HandleFunc("GET /v1/readyz", s.readyz)
	if s.node != nil {
		mux.Handle("/v1/replication/", s.node.Handler())
	}
	if s.obs != nil {
		s.registerMetrics()
		mux.Handle("GET /metrics", s.obs.Metrics.Handler())
	}
	mux.HandleFunc("GET /{$}", s.dashboard)
	return s.instrument(mux)
}

// writeJSON emits one JSON response.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to a JSON error body, classing it client
// (4xx and 499 disconnects) or server (5xx) for the split counters.
func (s *server) writeErr(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	class := "client"
	if status >= 500 {
		class = "server"
		s.errorsServer.Add(1)
	} else {
		s.errorsClient.Add(1)
	}
	s.httpErrors.With(class).Inc()
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusOf classifies store errors.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ses.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ses.ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		// The deadline fired during a one-shot phase (scoring), where
		// no feasible best-so-far exists to commit; mid-selection the
		// resolve would instead have committed with Stopped set.
		return http.StatusGatewayTimeout
	case errors.Is(err, ses.ErrPipelineSaturated):
		// Admission control: the pipeline queue is full and the request
		// was never executed; the client may retry.
		return http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrAckTimeout):
		// The write is committed locally but not enough followers
		// confirmed it in time; 503 keeps the response honest and lets
		// the client retry (the retry re-waits, it does not re-apply
		// blindly — mutations are idempotent per the batch contract).
		return http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrStaleEpoch):
		// The request was routed on a membership view older than a
		// promotion this node has observed.
		return http.StatusConflict
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

// reqContext applies the optional ?timeout=DURATION to the request
// context; the deadline flows into the anytime resolve. deadline
// reports whether the client asked for one — such requests bypass the
// pipeline so the deadline governs their own solve rather than a
// merged commit.
func reqContext(r *http.Request) (ctx context.Context, cancel context.CancelFunc, deadline bool, err error) {
	q := r.URL.Query().Get("timeout")
	if q == "" {
		return r.Context(), func() {}, false, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil || d <= 0 {
		return nil, nil, false, fmt.Errorf("bad timeout %q", q)
	}
	ctx, cancel = context.WithTimeout(r.Context(), d)
	return ctx, cancel, true, nil
}

// checkEpoch fences clustered mutations against stale routing: a
// request stamped with an X-Ses-Epoch below this node's promotion
// epoch came through a router that has not yet observed a newer
// promotion, and accepting it could diverge two survivors. Requests
// without the header (operator curl, tests) bypass the fence.
func (s *server) checkEpoch(r *http.Request) error {
	if s.node == nil {
		return nil
	}
	h := r.Header.Get("X-Ses-Epoch")
	if h == "" {
		return nil
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return fmt.Errorf("bad X-Ses-Epoch %q", h)
	}
	if cur := s.node.Epoch(); e < cur {
		return fmt.Errorf("%w: request epoch %d below node epoch %d", cluster.ErrStaleEpoch, e, cur)
	}
	return nil
}

// awaitAck holds a mutation's response until the configured number of
// followers have durably applied the session's latest committed
// record (no-op unless -replicate-ack). It reports whether the
// response may proceed; on timeout it has already written the 503.
func (s *server) awaitAck(w http.ResponseWriter, r *http.Request, name string) bool {
	if s.node == nil {
		return true
	}
	_, asp := obs.StartSpan(r.Context(), obs.SpanReplAck, obs.A("session", name))
	err := s.node.AwaitAck(r.Context(), name)
	asp.End()
	if err != nil {
		s.writeErr(w, statusOf(err), fmt.Errorf("write committed locally, replication unconfirmed: %w", err))
		return false
	}
	return true
}

// doResolve routes a resolve through the pipeline unless the request
// carries its own deadline (or the daemon runs without a pipeline).
func (s *server) doResolve(ctx context.Context, name string, deadline bool) (*ses.Delta, error) {
	if s.pipeline == nil || deadline {
		return s.store.Resolve(ctx, name)
	}
	return s.pipeline.Resolve(ctx, name)
}

// doBatch is doResolve's ApplyBatch counterpart.
func (s *server) doBatch(ctx context.Context, name string, muts []ses.Mutation, deadline bool) (*ses.BatchResult, error) {
	if s.pipeline == nil || deadline {
		return s.store.ApplyBatch(ctx, name, muts)
	}
	return s.pipeline.ApplyBatch(ctx, name, muts)
}

// createReq is the body of POST /v1/sessions.
type createReq struct {
	Name string `json:"name"`
	K    int    `json:"k"`
	// Objective selects what the session maximizes: "omega" (default),
	// "attendance[:theta]" or "fairness[:blend]". It becomes part of
	// the session's state and travels in its snapshots.
	Objective string               `json:"objective,omitempty"`
	Instance  *dataset.InstanceDoc `json:"instance"`
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	if err := s.checkEpoch(r); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Name == "" || req.Instance == nil {
		s.writeErr(w, http.StatusBadRequest, errors.New("name and instance are required"))
		return
	}
	obj, err := ses.ParseObjective(req.Objective)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	inst, err := req.Instance.Instance()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.CreateWithObjective(req.Name, inst, req.K, obj); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	if !s.awaitAck(w, r, req.Name) {
		return
	}
	meta, err := s.store.Meta(req.Name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, meta)
}

func (s *server) listSessions(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.store.Metas())
}

func (s *server) getSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	meta, err := s.store.Meta(name)
	if err != nil {
		if replica, peer, ok := s.replicaFor(name, err); ok {
			if m, rerr := replica.Meta(name); rerr == nil {
				w.Header().Set("X-Ses-Replica-Of", peer)
				s.writeJSON(w, http.StatusOK, m)
				return
			}
		}
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, meta)
}

// replicaFor resolves a read miss against the replication layer: on a
// clustered daemon a session not found locally may live on a peer,
// and this node's warm replica of that peer can serve the read
// lock-free. Only not-found errors are eligible.
func (s *server) replicaFor(name string, err error) (*ses.Store, string, bool) {
	if s.node == nil || !errors.Is(err, ses.ErrSessionNotFound) {
		return nil, "", false
	}
	return s.node.Replica(name)
}

func (s *server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.checkEpoch(r); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	if s.obs != nil {
		// End the deleted session's watch streams; their channels close
		// and the SSE handlers return.
		s.obs.Hub.CloseSession(name)
	}
	if !s.awaitAck(w, r, name) {
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// observeResolve records one resolve latency.
func (s *server) observeResolve(d time.Duration) {
	s.resolves.Add(1)
	s.latMu.Lock()
	if len(s.lat) < latRing {
		s.lat = append(s.lat, d.Seconds())
	} else {
		s.lat[s.latAt%latRing] = d.Seconds()
	}
	s.latAt++
	s.latMu.Unlock()
}

func (s *server) resolveSession(w http.ResponseWriter, r *http.Request) {
	if err := s.checkEpoch(r); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	ctx, cancel, deadline, err := reqContext(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	name := r.PathValue("name")
	start := time.Now()
	delta, err := s.doResolve(ctx, name, deadline)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.observeResolve(time.Since(start))
	if !s.awaitAck(w, r, name) {
		return
	}
	s.writeJSON(w, http.StatusOK, delta)
}

// batchReq is the body of POST /v1/sessions/{name}/batch.
type batchReq struct {
	Mutations []ses.Mutation `json:"mutations"`
}

func (s *server) batchSession(w http.ResponseWriter, r *http.Request) {
	if err := s.checkEpoch(r); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	ctx, cancel, deadline, err := reqContext(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var req batchReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	name := r.PathValue("name")
	start := time.Now()
	res, err := s.doBatch(ctx, name, req.Mutations, deadline)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.observeResolve(time.Since(start))
	s.batches.Add(1)
	if !s.awaitAck(w, r, name) {
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// scheduleResp is the body of GET /v1/sessions/{name}/schedule.
type scheduleResp struct {
	Assignments []ses.Assignment `json:"assignments"`
	Utility     float64          `json:"utility"`
}

func (s *server) getSchedule(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sched, err := s.store.Get(name)
	if err != nil {
		if replica, peer, ok := s.replicaFor(name, err); ok {
			if rs, rerr := replica.Get(name); rerr == nil {
				w.Header().Set("X-Ses-Replica-Of", peer)
				s.writeJSON(w, http.StatusOK, scheduleResp{Assignments: rs.Schedule(), Utility: rs.Utility()})
				return
			}
		}
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, scheduleResp{Assignments: sched.Schedule(), Utility: sched.Utility()})
}

func (s *server) getSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	state, err := s.store.Snapshot(name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	doc, err := ses.NewSnapshot(name, state)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("format") == "binary" {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := ses.EncodeSnapshotBinary(w, doc); err != nil {
			log.Printf("sesd: writing binary snapshot: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := ses.EncodeSnapshot(w, doc); err != nil {
		log.Printf("sesd: writing snapshot: %v", err)
	}
}

func (s *server) restoreSession(w http.ResponseWriter, r *http.Request) {
	if err := s.checkEpoch(r); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	name := r.PathValue("name")
	var doc *ses.Snapshot
	var err error
	mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt == "application/octet-stream" {
		doc, err = ses.DecodeSnapshotBinary(r.Body)
	} else {
		doc, err = ses.DecodeSnapshot(r.Body)
	}
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	state, err := doc.State()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	replace, _ := strconv.ParseBool(r.URL.Query().Get("replace"))
	if err := s.store.Restore(name, state, replace); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	if !s.awaitAck(w, r, name) {
		return
	}
	meta, err := s.store.Meta(name)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, meta)
}

// walMetrics is the WAL section of /v1/metrics: the cumulative
// counters plus the realized fsync amortization.
type walMetrics struct {
	ses.WALStats
	RecordsPerFsync float64 `json:"records_per_fsync"`
}

// metricsResp is the body of GET /v1/metrics.
type metricsResp struct {
	UptimeSec float64 `json:"uptime_sec"`
	Sessions  int     `json:"sessions"`
	Requests  uint64  `json:"requests"`
	Resolves  uint64  `json:"resolves"`
	Batches   uint64  `json:"batches"`
	Errors    uint64  `json:"errors"`
	// ErrorsClient/ErrorsServer split Errors by responsibility: client
	// = 4xx and 499 disconnects, server = 5xx.
	ErrorsClient uint64               `json:"errors_client"`
	ErrorsServer uint64               `json:"errors_server"`
	ResolveMs    map[string]float64   `json:"resolve_latency_ms"`
	Pipeline     *ses.PipelineMetrics `json:"pipeline,omitempty"`
	WAL          *walMetrics          `json:"wal,omitempty"`
	Replication  *cluster.Metrics     `json:"replication,omitempty"`
	Metas        []ses.SessionMeta    `json:"session_metas"`
}

// readyz is the readiness probe: a memory daemon (and an unclustered
// durable one) is ready as soon as it serves — OpenStore returning
// means recovery finished before the listener existed. A clustered
// daemon is additionally unready while any connected replication
// stream lags its primary beyond -lag-bound, so load balancers don't
// route reads at a follower that is still catching up.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.node != nil {
		if ok, reason := s.node.Ready(); !ok {
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": reason})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.latMu.Lock()
	lat := append([]float64(nil), s.lat...)
	s.latMu.Unlock()
	sort.Float64s(lat)
	resolveMs := map[string]float64{}
	if len(lat) > 0 {
		for _, p := range []float64{50, 90, 99} {
			resolveMs[fmt.Sprintf("p%.0f", p)] = stats.PercentileSorted(lat, p) * 1000
		}
		resolveMs["max"] = lat[len(lat)-1] * 1000
	}
	resp := metricsResp{
		UptimeSec:    time.Since(s.start).Seconds(),
		Sessions:     s.store.Len(),
		Requests:     s.requests.Load(),
		Resolves:     s.resolves.Load(),
		Batches:      s.batches.Load(),
		Errors:       s.errors.Load(),
		ErrorsClient: s.errorsClient.Load(),
		ErrorsServer: s.errorsServer.Load(),
		ResolveMs:    resolveMs,
		Metas:        s.store.Metas(),
	}
	if s.pipeline != nil {
		pm := s.pipeline.Metrics()
		resp.Pipeline = &pm
	}
	if s.walStats != nil {
		ws := s.walStats()
		resp.WAL = &walMetrics{WALStats: ws, RecordsPerFsync: ws.RecordsPerFsync()}
	}
	if s.node != nil {
		m := s.node.Metrics()
		resp.Replication = &m
	}
	s.writeJSON(w, http.StatusOK, resp)
}
