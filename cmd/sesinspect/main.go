// Command sesinspect reports the dataset statistics the paper derives
// its experimental parameters from:
//
//   - the overlapping-events analysis behind the "8.1 competing events
//     per interval" parameter (Section IV-A),
//   - interest (likeness) sparsity and distribution under Jaccard,
//   - tag popularity skew.
//
// Usage:
//
//	sesinspect [-dataset file.json] [-users N] [-events N] [-seed S]
//	           [-events-per-day F]
//
// Without -dataset, a dataset is generated at the given scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ses/internal/dataset"
	"ses/internal/ebsn"
	"ses/internal/interest"
	"ses/internal/stats"
	"ses/internal/tablefmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesinspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sesinspect", flag.ContinueOnError)
	dsPath := fs.String("dataset", "", "dataset JSON (omit to generate)")
	users := fs.Int("users", 8000, "users when generating")
	events := fs.Int("events", 8192, "event pool when generating")
	seed := fs.Uint64("seed", 42, "seed")
	perDay := fs.Float64("events-per-day", 13.5, "timeline density for the overlap analysis")
	sample := fs.Int("sample", 200, "events to sample for the interest statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *ebsn.Dataset
	if *dsPath != "" {
		f, err := os.Open(*dsPath)
		if err != nil {
			return err
		}
		ds, err = dataset.LoadDataset(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg := ebsn.DefaultConfig(*seed)
		cfg.NumUsers = *users
		cfg.NumEvents = *events
		cfg.NumTags = 3000
		cfg.NumGroups = 400
		var err error
		ds, err = ebsn.Generate(cfg)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "dataset: %d users, %d pool events, %d groups\n\n",
		len(ds.UserTags), len(ds.EventTags), len(ds.GroupTags))

	// 1. Overlapping-events analysis (paper: 8.1 on average).
	n := len(ds.EventTags)
	horizon := float64(n) / *perDay * 24
	times := ebsn.GenerateTimes(*seed, n, horizon, 1.5, 3.5)
	ov, err := ebsn.ComputeOverlapStats(times)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "overlapping-events analysis (%g events/day over %.0f days):\n", *perDay, horizon/24)
	fmt.Fprintf(out, "  mean events during overlapping intervals: %.1f   (paper's Meetup measurement: 8.1)\n", ov.MeanOverlap)
	fmt.Fprintf(out, "  max overlap: %d   time-weighted mean concurrency: %.1f\n\n", ov.MaxOverlap, ov.MeanConcurrency)

	// 2. Interest statistics under thresholded Jaccard.
	if *sample > n {
		*sample = n
	}
	picks := make([]int, *sample)
	for i := range picks {
		picks[i] = i * n / *sample
	}
	sim := interest.Thresholded(interest.Jaccard, 0.04)
	m := ds.InterestFor(picks, sim)
	var perEvent stats.Summary
	var muAll []float64
	for e := 0; e < m.NumEvents(); e++ {
		r := m.Row(e)
		perEvent.Add(float64(r.Len()))
		muAll = append(muAll, r.Vals...)
	}
	density := float64(m.NNZ()) / float64(m.NumEvents()*len(ds.UserTags))
	fmt.Fprintf(out, "interest (Jaccard, threshold 0.04) over %d sampled events:\n", *sample)
	fmt.Fprintf(out, "  density: %.4f   interested users per event: %s\n", density, perEvent.String())
	if len(muAll) > 0 {
		sort.Float64s(muAll)
		fmt.Fprintf(out, "  µ quartiles: p25=%.3f p50=%.3f p75=%.3f p95=%.3f\n\n",
			stats.Percentile(muAll, 25), stats.Percentile(muAll, 50),
			stats.Percentile(muAll, 75), stats.Percentile(muAll, 95))
	}

	// 3. Tag popularity skew.
	counts := map[int32]int{}
	for _, ts := range ds.UserTags {
		for _, tag := range ts {
			counts[tag]++
		}
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	tab := &tablefmt.Table{
		Title:  "tag popularity (users per tag)",
		Header: []string{"rank", "users"},
	}
	for _, rank := range []int{1, 10, 100, 1000} {
		if rank <= len(freqs) {
			tab.AddRow(fmt.Sprintf("%d", rank), fmt.Sprintf("%d", freqs[rank-1]))
		}
	}
	return tab.Render(out)
}
