package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportsAllSections(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-users", "400", "-events", "512", "-sample", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"overlapping-events analysis",
		"paper's Meetup measurement: 8.1",
		"interest (Jaccard, threshold 0.04)",
		"density",
		"tag popularity",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-dataset", "/nope.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing dataset file accepted")
	}
}
