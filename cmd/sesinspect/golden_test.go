package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the golden outputs with:
//
//	go test ./cmd/sesinspect/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenOutput locks sesinspect's report on a generated dataset.
// Generation is fully seed-deterministic and the report contains no
// wall-clock figures, so the comparison is byte-exact.
func TestGoldenOutput(t *testing.T) {
	for _, tc := range []struct {
		golden string
		args   []string
	}{
		{"report_small.golden", []string{"-users", "400", "-events", "512", "-sample", "40", "-seed", "42"}},
		{"report_dense.golden", []string{"-users", "300", "-events", "256", "-sample", "25", "-seed", "7", "-events-per-day", "20"}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, out.String(), want)
			}
		})
	}
}
