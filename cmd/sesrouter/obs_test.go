package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ses/internal/cluster"
)

// TestRouterObservabilitySurfaces pins the router's own metrics: the
// JSON document at /v1/metrics and the Prometheus exposition at
// /metrics, both answered by the router itself (never proxied), with
// per-backend health and forwarded counters that move with traffic.
func TestRouterObservabilitySurfaces(t *testing.T) {
	node := func(id string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"id":"` + id + `","ready":true}`))
		})
		mux.HandleFunc("/v1/sessions/", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"node":"` + id + `"}`))
		})
		return httptest.NewServer(mux)
	}
	n1 := node("n1")
	defer n1.Close()
	n2 := node("n2")
	defer n2.Close()

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers:          map[string]string{"n1": n1.URL, "n2": n2.URL},
		HealthInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Start()
	front := httptest.NewServer(observedHandler(rt))
	defer front.Close()

	// Wait for the health loop to see both nodes, through the JSON
	// metrics surface itself.
	var m cluster.RouterMetrics
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err == nil && m.Backends["n1"].Healthy && m.Backends["n2"].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never reported both backends healthy: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A proxied read moves the forwarded counters.
	resp, err := http.Get(front.URL + "/v1/sessions/some-session")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied read: status %d", resp.StatusCode)
	}

	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("exposition Content-Type = %q", ct)
	}
	seen := map[string]bool{}
	var text strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		text.WriteString(line)
		text.WriteByte('\n')
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series := line[:strings.LastIndexByte(line, ' ')]
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
	}
	for _, want := range []string{
		`sesrouter_backend_healthy{node="n1"} 1`,
		`sesrouter_backend_healthy{node="n2"} 1`,
		`sesrouter_backend_consecutive_failures{node="n1"} 0`,
		"sesrouter_forwarded_total 1",
		"sesrouter_promotions_total 0",
		"sesrouter_fenced_promotions_total 0",
		"sesrouter_epoch",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
