// Command sesrouter is the failover proxy in front of a replicated
// sesd cluster: one address clients talk to while sessions live
// spread across N nodes. It routes by the same consistent-hash ring
// the nodes use — mutations (create, delete, resolve, batch, restore)
// and snapshot reads go to a session's primary, other GET reads
// round-robin across live nodes and fall back to the primary on a
// replica miss, and GET /v1/sessions fans out to every node and
// merges.
//
// The router polls every node's /v1/replication/status; -down-after
// consecutive failed polls mark a node dead and trigger failover: the
// surviving follower whose replication cursor over the dead node is
// highest — the longest acknowledged prefix — is told to promote
// (POST /v1/replication/promote) and inherits the dead node's
// sessions until it returns. Because acks follow the group-commit
// fsync and followers apply the primary's own WAL records,
// acknowledged mutations survive the failover.
//
// Each promotion proposes the next promotion epoch (one past the
// highest the router has observed from any node); a node that has
// already seen that epoch answers 409 and the router records nothing,
// so two routers — or one with a flapping health check — cannot
// promote divergent survivors. The router stamps its observed epoch
// on forwarded mutations (X-Ses-Epoch), letting nodes fence writes
// from a router that lost a promotion race.
//
// Usage:
//
//	sesrouter -peers ID=URL,ID=URL,... [-addr :8090]
//	          [-vnodes 64] [-health-interval 250ms] [-down-after 3]
//	          [-pprof ADDR]
//
// -peers and -vnodes must match the sesd nodes' own flags. The
// router's view is at GET /v1/router/status; its own counters
// (per-backend health and forwarded totals, promotions, fenced
// promotions, epoch) are JSON at GET /v1/metrics and Prometheus text
// at GET /metrics — both answered by the router itself, never
// forwarded. Forwarded mutations that arrive without an X-Ses-Trace
// header get one stamped, so one trace ID spans the routed write and
// its replication on the target cluster. -pprof ADDR serves
// net/http/pprof on a separate listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ses/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		log.Fatalf("sesrouter: %v", err)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sesrouter", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	peersSpec := fs.String("peers", "", "cluster membership as ID=URL,ID=URL,... (same map the sesd nodes run with)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per member; must match the cluster (0 = default)")
	healthIvl := fs.Duration("health-interval", 0, "node status poll period (0 = 250ms)")
	downAfter := fs.Int("down-after", 0, "consecutive failed polls before a node is dead (0 = 3)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
	fs.Parse(args)

	peers, err := parsePeers(*peersSpec)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("sesrouter: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("sesrouter: pprof server: %v", err)
			}
		}()
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers:          peers,
		VNodes:         *vnodes,
		HealthInterval: *healthIvl,
		DownAfter:      *downAfter,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("sesrouter: fronting %d nodes on %s", len(peers), ln.Addr())
	httpSrv := &http.Server{Handler: observedHandler(rt)}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	log.Printf("sesrouter: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		httpSrv.Close()
	}
	log.Printf("sesrouter: bye")
	return nil
}

// parsePeers parses the -peers spec: comma-separated ID=URL pairs
// (the same syntax sesd takes).
func parsePeers(spec string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want ID=URL)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is required")
	}
	return peers, nil
}
