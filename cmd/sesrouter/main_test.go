package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n1=http://a:1, n2=http://b:2/")
	if err != nil {
		t.Fatal(err)
	}
	if peers["n1"] != "http://a:1" || peers["n2"] != "http://b:2" {
		t.Errorf("parsePeers = %v", peers)
	}
	for _, bad := range []string{"", "n1", "n1=", "=u", "a=1,a=2"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

// freeAddr reserves an ephemeral port and releases it for the daemon
// to claim. The tiny window between close and rebind is fine in a
// test process that owns the machine's test run.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRouterDaemonFrontsCluster boots the real daemon main loop over
// two stub nodes and checks it proxies reads, reports status, and
// shuts down cleanly on ctx cancel.
func TestRouterDaemonFrontsCluster(t *testing.T) {
	node := func(id string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"id":%q,"ready":true}`, id)
		})
		mux.HandleFunc("/v1/sessions/", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"node":%q}`, id)
		})
		return httptest.NewServer(mux)
	}
	n1 := node("n1")
	defer n1.Close()
	n2 := node("n2")
	defer n2.Close()

	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", addr,
			"-peers", "n1=" + n1.URL + ",n2=" + n2.URL,
			"-health-interval", "10ms",
		})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("router never shut down")
		}
	})

	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/router/status")
		if err == nil {
			var st struct {
				Nodes map[string]string `json:"nodes"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Nodes["n1"] == "up" && st.Nodes["n2"] == "up" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never reported both nodes up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(url + "/v1/sessions/any-session")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["node"] != "n1" && out["node"] != "n2" {
		t.Errorf("proxied read answered by %v", out["node"])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("run without -peers accepted")
	}
}
