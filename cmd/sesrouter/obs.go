package main

import (
	"encoding/json"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only by the opt-in -pprof listener
	"sort"

	"ses/internal/cluster"
	"ses/internal/obs"
)

// observedHandler wraps the router proxy with the router's own
// observability surface: Prometheus exposition at GET /metrics and
// the JSON counters at GET /v1/metrics. Everything else still flows
// through the proxy, so the router stays transparent to the cluster
// API (a node's own /v1/metrics remains reachable per node, not
// through the router — the router's document is about routing).
func observedHandler(rt *cluster.Router) http.Handler {
	reg := routerRegistry(rt)
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rt.Metrics())
	})
	mux.Handle("/", rt)
	return mux
}

// routerRegistry flattens RouterMetrics into Prometheus families;
// every family is scrape-time (the router already counts).
func routerRegistry(rt *cluster.Router) *obs.Registry {
	reg := obs.NewRegistry()
	// Per-backend families emit nodes in sorted order so scrapes are
	// stable and the exposition parse test can assert no duplicates.
	perBackend := func(pick func(cluster.BackendMetrics) float64) func(func([]string, float64)) {
		return func(emit func([]string, float64)) {
			m := rt.Metrics()
			ids := make([]string, 0, len(m.Backends))
			for id := range m.Backends {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				emit([]string{id}, pick(m.Backends[id]))
			}
		}
	}
	scalar := func(pick func(cluster.RouterMetrics) float64) func(func([]string, float64)) {
		return func(emit func([]string, float64)) { emit(nil, pick(rt.Metrics())) }
	}
	reg.CollectFunc("sesrouter_backend_healthy", "1 when the health loop considers the node alive.", "gauge", []string{"node"},
		perBackend(func(b cluster.BackendMetrics) float64 {
			if b.Healthy {
				return 1
			}
			return 0
		}))
	reg.CollectFunc("sesrouter_backend_consecutive_failures", "Live failed-poll streak per node.", "gauge", []string{"node"},
		perBackend(func(b cluster.BackendMetrics) float64 { return float64(b.ConsecutiveFailures) }))
	reg.CollectFunc("sesrouter_backend_forwarded_total", "Requests proxied to each backend.", "counter", []string{"node"},
		perBackend(func(b cluster.BackendMetrics) float64 { return float64(b.Forwarded) }))
	reg.CollectFunc("sesrouter_forwarded_total", "Requests proxied to any backend.", "counter", nil,
		scalar(func(m cluster.RouterMetrics) float64 { return float64(m.Forwarded) }))
	reg.CollectFunc("sesrouter_promotions_total", "Failover promotions this router drove.", "counter", nil,
		scalar(func(m cluster.RouterMetrics) float64 { return float64(m.Promotions) }))
	reg.CollectFunc("sesrouter_fenced_promotions_total", "Promotions another router won first (409 fenced).", "counter", nil,
		scalar(func(m cluster.RouterMetrics) float64 { return float64(m.FencedPromotions) }))
	reg.CollectFunc("sesrouter_epoch", "Highest promotion epoch the router has observed.", "gauge", nil,
		scalar(func(m cluster.RouterMetrics) float64 { return float64(m.Epoch) }))
	return reg
}
