package ses

import (
	"context"

	"ses/internal/obs"
	"ses/internal/session"
	"ses/internal/solver"
	"ses/internal/store"
)

// Observability bundles the serving stack's instruments — request
// tracer, metrics registry, and the per-session watch hub — built by
// NewObservability and threaded through a store with
// WithObservability. cmd/sesd mounts its HTTP surfaces (/metrics,
// /v1/traces, watch SSE); embedders can use the pieces directly.
type Observability = obs.Observability

// ObservabilityOptions configures NewObservability; the zero value is
// production-usable (512-trace ring, no slow-trace log).
type ObservabilityOptions = obs.Options

// NewObservability builds a wired Observability: bounded trace ring,
// metrics registry with the per-stage latency histogram attached to
// span ends, and the watch fan-out hub.
func NewObservability(opts ObservabilityOptions) *Observability { return obs.New(opts) }

// WithObservability attaches an Observability to NewStore/OpenStore:
// the store streams solver progress and committed deltas into the
// hub, and traced request contexts (see the obs tracer) get pipeline,
// resolve-stage, and WAL spans recorded. Without it stores run
// exactly as before.
func WithObservability(o *Observability) Option { return func(c *config) { c.obs = o } }

// TraceFromContext returns the active trace ID bound into ctx by the
// serving layer ("" when the context is untraced) — the value carried
// by the X-Ses-Trace header and queryable at GET /v1/traces/{id}.
func TraceFromContext(ctx context.Context) string { return obs.TraceID(ctx) }

// obsSink bridges store activity into the hub. Payload construction
// is skipped when nobody watches the session: Progress fires per
// assignment under the session lock, so the idle cost must stay at
// one mutex-guarded map lookup.
type obsSink struct{ o *Observability }

func (s obsSink) Progress(name string, p solver.Progress) {
	if !s.o.Hub.HasSubscribers(name) {
		return
	}
	s.o.Hub.Publish(name, "progress", progressEvent{
		Solver:    p.Solver,
		Event:     p.Event,
		Interval:  p.Interval,
		Scheduled: p.Scheduled,
	})
}

func (s obsSink) Commit(name string, meta store.Meta, delta *session.Delta) {
	if !s.o.Hub.HasSubscribers(name) {
		return
	}
	s.o.Hub.Publish(name, "commit", commitEvent{Meta: meta, Delta: delta})
}

// progressEvent is the watch stream's "progress" payload.
type progressEvent struct {
	Solver    string `json:"solver"`
	Event     int    `json:"event"`
	Interval  int    `json:"interval"`
	Scheduled int    `json:"scheduled"`
}

// commitEvent is the watch stream's "commit" payload: the post-commit
// session metadata plus the committing resolve's delta (nil when the
// commit carried none).
type commitEvent struct {
	Meta  store.Meta     `json:"meta"`
	Delta *session.Delta `json:"delta,omitempty"`
}

// sinkFor builds the store sink for a resolved config (nil when no
// observability is attached).
func (c config) sinkFor() store.Sink {
	if c.obs == nil {
		return nil
	}
	return obsSink{o: c.obs}
}
