package ses

import (
	"fmt"

	"ses/internal/core"
	"ses/internal/interest"
)

// InstanceBuilder constructs SES instances by hand — the path for
// organizers encoding a concrete scenario (a festival lineup, a venue
// season) rather than sampling from a generated dataset.
//
//	b := ses.NewInstanceBuilder(3, 2, 10) // 3 users, 2 intervals, θ=10
//	popConcert := b.AddEvent(0, 4, "pop-concert")
//	b.SetInterest(alice, popConcert, 0.9)
//	rival := b.AddCompeting(0, "rival-show")
//	b.SetCompetingInterest(alice, rival, 0.5)
//	inst, err := b.Build()
type InstanceBuilder struct {
	numUsers     int
	numIntervals int
	resources    float64
	events       []Event
	competing    []CompetingEvent
	candMu       []map[int32]float64
	compMu       []map[int32]float64
	activity     Activity
	err          error
}

// NewInstanceBuilder starts an instance with the given user count,
// interval count and per-interval resource budget θ. σ defaults to 1
// for everyone (override with SetActivity).
func NewInstanceBuilder(numUsers, numIntervals int, resources float64) *InstanceBuilder {
	return &InstanceBuilder{
		numUsers:     numUsers,
		numIntervals: numIntervals,
		resources:    resources,
		activity:     ConstantActivity(1),
	}
}

// AddEvent adds a candidate event and returns its index. A negative
// location or required amount is recorded as a builder error
// immediately (reported by Build), like SetInterest does, instead of
// surfacing later as an opaque instance-validation failure.
func (b *InstanceBuilder) AddEvent(location int, required float64, name string) int {
	if b.err == nil && location < 0 {
		b.err = fmt.Errorf("ses: AddEvent(%q): negative location %d", name, location)
	}
	if b.err == nil && required < 0 {
		b.err = fmt.Errorf("ses: AddEvent(%q): negative required resources %v", name, required)
	}
	b.events = append(b.events, Event{Location: location, Required: required, Name: name})
	b.candMu = append(b.candMu, make(map[int32]float64))
	return len(b.events) - 1
}

// AddCompeting adds a third-party event at the given interval and
// returns its index. An interval outside [0, numIntervals) is
// recorded as a builder error immediately (reported by Build).
func (b *InstanceBuilder) AddCompeting(interval int, name string) int {
	if b.err == nil && (interval < 0 || interval >= b.numIntervals) {
		b.err = fmt.Errorf("ses: AddCompeting(%q): interval %d outside [0,%d)", name, interval, b.numIntervals)
	}
	b.competing = append(b.competing, CompetingEvent{Interval: interval, Name: name})
	b.compMu = append(b.compMu, make(map[int32]float64))
	return len(b.competing) - 1
}

// SetInterest sets µ(user, event) for a candidate event.
func (b *InstanceBuilder) SetInterest(user, event int, mu float64) *InstanceBuilder {
	if b.err != nil {
		return b
	}
	if event < 0 || event >= len(b.events) {
		b.err = fmt.Errorf("ses: SetInterest: event %d not added", event)
		return b
	}
	if user < 0 || user >= b.numUsers {
		b.err = fmt.Errorf("ses: SetInterest: user %d outside [0,%d)", user, b.numUsers)
		return b
	}
	if mu < 0 || mu > 1 {
		b.err = fmt.Errorf("ses: SetInterest: µ = %v outside [0,1]", mu)
		return b
	}
	b.candMu[event][int32(user)] = mu
	return b
}

// SetCompetingInterest sets µ(user, competing event).
func (b *InstanceBuilder) SetCompetingInterest(user, comp int, mu float64) *InstanceBuilder {
	if b.err != nil {
		return b
	}
	if comp < 0 || comp >= len(b.competing) {
		b.err = fmt.Errorf("ses: SetCompetingInterest: competing event %d not added", comp)
		return b
	}
	if user < 0 || user >= b.numUsers {
		b.err = fmt.Errorf("ses: SetCompetingInterest: user %d outside [0,%d)", user, b.numUsers)
		return b
	}
	if mu < 0 || mu > 1 {
		b.err = fmt.Errorf("ses: SetCompetingInterest: µ = %v outside [0,1]", mu)
		return b
	}
	b.compMu[comp][int32(user)] = mu
	return b
}

// SetActivity installs the σ model.
func (b *InstanceBuilder) SetActivity(a Activity) *InstanceBuilder {
	b.activity = a
	return b
}

// Build assembles and validates the instance.
func (b *InstanceBuilder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	toMatrix := func(rows []map[int32]float64) (*interest.Matrix, error) {
		m := interest.NewMatrix(b.numUsers, len(rows))
		for i, row := range rows {
			ids := make([]int32, 0, len(row))
			vals := make([]float64, 0, len(row))
			for id, v := range row {
				ids = append(ids, id)
				vals = append(vals, v)
			}
			v, err := interest.NewSparseVector(ids, vals)
			if err != nil {
				return nil, err
			}
			m.SetRow(i, v)
		}
		return m, nil
	}
	cand, err := toMatrix(b.candMu)
	if err != nil {
		return nil, fmt.Errorf("ses: building candidate interest: %w", err)
	}
	comp, err := toMatrix(b.compMu)
	if err != nil {
		return nil, fmt.Errorf("ses: building competing interest: %w", err)
	}
	inst := &core.Instance{
		NumUsers:     b.numUsers,
		NumIntervals: b.numIntervals,
		Resources:    b.resources,
		Events:       append([]Event(nil), b.events...),
		Competing:    append([]CompetingEvent(nil), b.competing...),
		CandInterest: cand,
		CompInterest: comp,
		Activity:     b.activity,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}
