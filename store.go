package ses

import (
	"errors"
	"io"

	"ses/internal/session"
	"ses/internal/snap"
	"ses/internal/store"
	"ses/internal/wal"
)

// Store is a sharded, thread-safe registry of named scheduling
// sessions — the in-process serving layer behind cmd/sesd. Sessions
// are spread over striped locks, so registry traffic (create, lookup,
// metadata) never serializes behind a running solve, and metadata
// reads are lock-free.
//
//	st := ses.NewStore(ses.WithWorkers(4))
//	st.Create("fest", inst, 20)
//	res, _ := st.ApplyBatch(ctx, "fest", []ses.Mutation{
//		ses.AddEventOp(ev, interest),
//		ses.PinOp(headliner, fridayNight),
//	})                                     // one incremental resolve
//	state, _ := st.Snapshot("fest")        // atomic state export
//	other.Restore("fest", state, false)    // warm restart elsewhere
type Store = store.Store

// SessionState is the portable state of one session: instance,
// constraints, committed schedule. Produced by Store.Snapshot (or
// Scheduler.ExportState), consumed by Store.Restore and the snapshot
// codecs.
type SessionState = session.State

// SessionMeta is the immutable, lock-free metadata snapshot of one
// session; see Store.Meta and Store.Metas.
type SessionMeta = store.Meta

// Mutation is one portfolio change in a Store.ApplyBatch group; build
// them with the *Op constructors below.
type Mutation = store.Mutation

// BatchResult reports one committed batch: ids assigned by add
// mutations and the Delta of the single resolve that committed the
// group.
type BatchResult = store.BatchResult

// Snapshot is the versioned wire document of a serialized session;
// see EncodeSnapshot/DecodeSnapshot and the ses/internal/snap version
// policy.
type Snapshot = snap.Snapshot

// SnapshotVersion is the snapshot format version this build reads and
// writes.
const SnapshotVersion = snap.Version

// Store registry errors.
var (
	// ErrSessionExists reports a Store.Create against a taken name.
	ErrSessionExists = store.ErrExists
	// ErrSessionNotFound reports a Store operation on an unknown name.
	ErrSessionNotFound = store.ErrNotFound
)

// NewStore returns an empty session store. The options (workers,
// engine, seed, progress) configure every session the store creates
// or restores.
func NewStore(opts ...Option) *Store {
	c := resolve(opts)
	st := store.New(session.Options{
		Workers:   c.workers,
		Engine:    c.engine,
		Objective: c.objective,
		Seed:      c.seed,
		Progress:  c.progress,
	})
	if sink := c.sinkFor(); sink != nil {
		st.SetSink(sink)
	}
	return st
}

// DurableStore is a Store whose acknowledged state changes are
// recorded in a per-shard write-ahead log before each call returns,
// and which recovers them exactly — schedule, utility, objective,
// counters — after a crash. Open one with OpenStore; it serves the
// full Store API plus Checkpoint (truncate the logs now) and Close
// (final checkpoint + shutdown).
//
//	st, _ := ses.OpenStore(ses.WithDurability("/var/lib/sesd"),
//		ses.WithSyncPolicy(ses.SyncInterval))
//	defer st.Close()                       // final checkpoint
//	st.Create("fest", inst, 20)            // logged before returning
//	st.ApplyBatch(ctx, "fest", muts)       // mutations + commit stamp logged
//	// kill -9 here: the next OpenStore replays the log and every
//	// acknowledged batch is still there, byte-identical.
type DurableStore = store.Durable

// ErrStoreClosed reports an operation on a closed DurableStore.
var ErrStoreClosed = store.ErrStoreClosed

// OpenStore opens (creating or recovering) a durable session store.
// WithDurability is required; WithSyncPolicy, WithSyncInterval and
// WithCheckpointEvery tune the log, and the session options (workers,
// engine, objective, seed, progress) apply to every session exactly
// like NewStore's.
func OpenStore(opts ...Option) (*DurableStore, error) {
	c := resolve(opts)
	if c.durableDir == "" {
		return nil, errors.New("ses: OpenStore requires WithDurability(dir); use NewStore for a memory-only store")
	}
	return store.OpenDurable(c.durableDir, store.DurableOptions{
		Session: session.Options{
			Workers:   c.workers,
			Engine:    c.engine,
			Objective: c.objective,
			Seed:      c.seed,
			Progress:  c.progress,
		},
		Sync:            c.syncPolicy,
		SyncInterval:    c.syncInterval,
		CheckpointEvery: c.checkpointEvery,
		GroupCommit:     c.groupCommit,
		Sink:            c.sinkFor(),
	})
}

// WALStats are a durable store's cumulative append-path counters
// (appends, fsyncs, group-commit batches); see DurableStore.WALStats
// and the seswal stats command.
type WALStats = wal.Stats

// Pipeline runs mutations and resolves for many sessions on a bounded
// worker pool, coalescing back-to-back work on the same session into
// one incremental resolve while independent sessions resolve on
// separate cores. Results are byte-identical to serial execution
// (test-enforced); see the store package's Pipeline doc for the exact
// merge semantics.
//
//	p := ses.NewPipeline(st, ses.WithResolveWorkers(4))
//	defer p.Close()
//	res, err := p.ApplyBatch(ctx, "fest", muts) // may share a resolve
type Pipeline = store.Pipeline

// PipelineBackend is the store surface a Pipeline drives; *Store and
// *DurableStore both satisfy it.
type PipelineBackend = store.Backend

// PipelineMetrics is a point-in-time pipeline load snapshot (queue
// depth, coalescing and rejection counters); see Pipeline.Metrics.
type PipelineMetrics = store.PipelineMetrics

// Pipeline admission errors.
var (
	// ErrPipelineSaturated reports an admission-control rejection: the
	// request was never executed and may be retried.
	ErrPipelineSaturated = store.ErrPipelineSaturated
	// ErrPipelineClosed reports a submit to a closed Pipeline.
	ErrPipelineClosed = store.ErrPipelineClosed
)

// NewPipeline starts a resolve pipeline over backend. WithResolveWorkers
// and WithResolveQueue tune the worker pool and admission control;
// Close releases the workers (the backend stays open).
func NewPipeline(backend PipelineBackend, opts ...Option) *Pipeline {
	c := resolve(opts)
	return store.NewPipeline(backend, store.PipelineOptions{
		Workers:  c.resolveWorkers,
		MaxQueue: c.resolveQueue,
	})
}

// Mutation constructors for Store.ApplyBatch.
var (
	// AddEventOp adds a candidate event with per-user interest.
	AddEventOp = store.AddEvent
	// CancelEventOp withdraws a candidate event.
	CancelEventOp = store.CancelEvent
	// UpdateInterestOp sets µ(user, event); 0 removes the entry.
	UpdateInterestOp = store.UpdateInterest
	// AddCompetingOp registers a third-party event with per-user
	// interest.
	AddCompetingOp = store.AddCompeting
	// PinOp forces an event to an interval.
	PinOp = store.Pin
	// UnpinOp releases a pin.
	UnpinOp = store.Unpin
	// ForbidOp excludes one (event, interval) assignment.
	ForbidOp = store.Forbid
	// AllowOp removes a Forbid.
	AllowOp = store.Allow
	// SetKOp retargets the schedule-size budget.
	SetKOp = store.SetK
)

// NewSnapshot wraps a session state in the versioned snapshot
// document; name tags the snapshot for restore (it may be empty).
func NewSnapshot(name string, st *SessionState) (*Snapshot, error) {
	return snap.FromState(name, st)
}

// EncodeSnapshot writes a snapshot as JSON — the wire form served by
// cmd/sesd. The encoding is canonical: the same state always produces
// the same bytes.
func EncodeSnapshot(w io.Writer, s *Snapshot) error { return snap.EncodeJSON(w, s) }

// DecodeSnapshot reads a JSON snapshot, rejecting unknown fields and
// unknown versions.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) { return snap.DecodeJSON(r) }

// EncodeSnapshotBinary writes the compact binary at-rest form (magic
// header, version byte, gob payload).
func EncodeSnapshotBinary(w io.Writer, s *Snapshot) error { return snap.EncodeBinary(w, s) }

// DecodeSnapshotBinary reads a binary snapshot written by
// EncodeSnapshotBinary.
func DecodeSnapshotBinary(r io.Reader) (*Snapshot, error) { return snap.DecodeBinary(r) }

// RestoreScheduler rebuilds a standalone Scheduler (outside any
// Store) from a snapshot state, validating it fully; the same options
// as NewScheduler apply.
func RestoreScheduler(st *SessionState, opts ...Option) (*Scheduler, error) {
	c := resolve(opts)
	return session.FromState(st, session.Options{
		Workers:   c.workers,
		Engine:    c.engine,
		Objective: c.objective,
		Seed:      c.seed,
		Progress:  c.progress,
	})
}
