package ses_test

import (
	"context"
	"math"
	"testing"

	"ses"
)

// smallDataset builds a compact EBSN snapshot for facade tests.
func smallDataset(t testing.TB) *ses.Dataset {
	t.Helper()
	ds, err := ses.GenerateEBSN(ses.EBSNConfig{
		Seed:      21,
		NumUsers:  700,
		NumEvents: 400,
		NumTags:   2000,
		NumGroups: 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := smallDataset(t)
	inst, err := ses.BuildInstance(ds, ses.PaperParams{K: 10, Intervals: 8, CandidateEvents: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Greedy().Solve(context.Background(), inst, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Size() != 10 {
		t.Fatalf("scheduled %d events, want 10", res.Schedule.Size())
	}
	if err := res.Schedule.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	// Facade utility evaluation agrees with the solver's.
	if got := ses.Utility(inst, res.Schedule); math.Abs(got-res.Utility) > 1e-9 {
		t.Fatalf("Utility = %v, solver reported %v", got, res.Utility)
	}
	// Per-event attendance sums to the total.
	sum := 0.0
	for _, a := range res.Schedule.Assignments() {
		sum += ses.EventAttendance(inst, res.Schedule, a.Event)
	}
	if math.Abs(sum-res.Utility) > 1e-9 {
		t.Fatalf("Σω = %v, Ω = %v", sum, res.Utility)
	}
	// ρ bounds for a few users.
	for u := 0; u < 20; u++ {
		for _, a := range res.Schedule.Assignments() {
			rho := ses.AttendanceProb(inst, res.Schedule, u, a.Event)
			if rho < 0 || rho > 1 {
				t.Fatalf("ρ(%d,%d) = %v", u, a.Event, rho)
			}
		}
	}
}

func TestSolverOrderingOnPublicAPI(t *testing.T) {
	ds := smallDataset(t)
	inst, err := ses.BuildInstance(ds, ses.PaperParams{K: 20, Intervals: 30, CandidateEvents: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	grd, err := ses.Greedy().Solve(context.Background(), inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := ses.LazyGreedy().Solve(context.Background(), inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	top, err := ses.Top().Solve(context.Background(), inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := ses.Random(1).Solve(context.Background(), inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grd.Utility-lazy.Utility) > 1e-9 {
		t.Errorf("lazy %v != grd %v", lazy.Utility, grd.Utility)
	}
	if grd.Utility < top.Utility || grd.Utility < rnd.Utility {
		t.Errorf("paper ordering violated: grd=%v top=%v rand=%v", grd.Utility, top.Utility, rnd.Utility)
	}
}

func TestNewSolverNames(t *testing.T) {
	for _, name := range ses.SolverNames() {
		s, err := ses.NewSolver(name, 3)
		if err != nil {
			t.Fatalf("NewSolver(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("NewSolver(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ses.NewSolver("bogus", 0); err == nil {
		t.Error("bogus solver name accepted")
	}
}

func TestManualInstanceConstruction(t *testing.T) {
	// The facade must support hand-built instances (the festival
	// example's path), not only generated ones.
	inst := festivalInstance()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Greedy().Solve(context.Background(), inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Size() != 2 {
		t.Fatalf("size %d", res.Schedule.Size())
	}
	if res.Utility <= 0 {
		t.Fatal("zero utility on an instance with interested users")
	}
}

func TestActivityModels(t *testing.T) {
	u := ses.UniformActivity(5)
	if v := u.Prob(3, 4); v < 0 || v >= 1 {
		t.Errorf("UniformActivity out of range: %v", v)
	}
	c := ses.ConstantActivity(0.7)
	if c.Prob(0, 0) != 0.7 {
		t.Error("ConstantActivity wrong")
	}
}

func TestJaccardFacade(t *testing.T) {
	a := ses.NewTagSet([]int32{1, 2, 3})
	b := ses.NewTagSet([]int32{2, 3, 4})
	if got := ses.Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v", got)
	}
}
