// Package ses is a Go implementation of the Social Event Scheduling
// (SES) problem from Bikakis, Kalogeraki, Gunopulos: "Social Event
// Scheduling", 34th IEEE International Conference on Data Engineering
// (ICDE 2018).
//
// # The problem
//
// An event organizer (festival, venue, marketing company) has a set of
// candidate events, a set of disjoint time intervals, and a per-
// interval resource budget. Third parties run competing events at
// known intervals. Each user has an interest µ(u, e) ∈ [0,1] in every
// event and a social-activity probability σ(u, t) ∈ [0,1] for every
// interval. When several interesting events collide, a user picks
// among them per Luce's choice rule, so the probability that user u
// attends scheduled event e at interval t is
//
//	ρ = σ(u,t) · µ(u,e) / (Σ_{c∈Ct} µ(u,c) + Σ_{p∈Et(S)} µ(u,p))
//
// The organizer wants the feasible schedule of exactly k events (no
// two events in the same interval share a location; per-interval
// resource use stays within budget θ) maximizing total expected
// attendance. The problem is strongly NP-hard (reduction from multiple
// knapsack; see ses/internal/reduction for the executable
// construction).
//
// # What the package provides
//
// The facade re-exports the pieces a downstream user needs:
//
//   - the problem model (Instance, Event, CompetingEvent, Schedule)
//   - solvers: Greedy (the paper's GRD, Algorithm 1), LazyGreedy (same
//     results, CELF-style heap), the paper's TOP and RAND baselines,
//     and Exact / LocalSearch / Anneal extensions
//   - utility evaluation (Utility, EventAttendance, AttendanceProb)
//   - a synthetic Meetup-like EBSN generator and the paper-parameter
//     instance builder for experiments
//   - σ (social activity) models, including an estimator from
//     check-in histories
//
// # Quick start
//
//	ds, _ := ses.GenerateEBSN(ses.EBSNConfig{Seed: 1, NumUsers: 2000,
//	    NumEvents: 1000, NumTags: 2000, NumGroups: 50})
//	inst, _ := ses.BuildInstance(ds, ses.PaperParams{K: 20, Seed: 1})
//	res, _ := ses.Greedy().Solve(inst, 20)
//	fmt.Printf("Ω = %.1f expected attendees\n", res.Utility)
//
// See examples/ for runnable programs, DESIGN.md for the architecture
// and EXPERIMENTS.md for the reproduction of the paper's figures.
package ses
