// Package ses is a Go implementation of the Social Event Scheduling
// (SES) problem from Bikakis, Kalogeraki, Gunopulos: "Social Event
// Scheduling", 34th IEEE International Conference on Data Engineering
// (ICDE 2018).
//
// # The problem
//
// An event organizer (festival, venue, marketing company) has a set of
// candidate events, a set of disjoint time intervals, and a per-
// interval resource budget. Third parties run competing events at
// known intervals. Each user has an interest µ(u, e) ∈ [0,1] in every
// event and a social-activity probability σ(u, t) ∈ [0,1] for every
// interval. When several interesting events collide, a user picks
// among them per Luce's choice rule, so the probability that user u
// attends scheduled event e at interval t is
//
//	ρ = σ(u,t) · µ(u,e) / (Σ_{c∈Ct} µ(u,c) + Σ_{p∈Et(S)} µ(u,p))
//
// The organizer wants the feasible schedule of exactly k events (no
// two events in the same interval share a location; per-interval
// resource use stays within budget θ) maximizing total expected
// attendance. The problem is strongly NP-hard (reduction from multiple
// knapsack; see ses/internal/reduction for the executable
// construction).
//
// # What the package provides
//
// The facade has two entry points for solving, plus the model and
// data machinery around them:
//
//   - One-shot solving: New(name, opts...) builds any of the eleven
//     registered algorithms (SolverNames lists them — the paper's GRD
//     and its TOP/RAND baselines plus the lazy-greedy, exact,
//     local-search, annealing, beam, online and spread extensions).
//     Solve(ctx, inst, k) honors the context: cancellation returns
//     promptly everywhere, and a deadline makes the anytime
//     algorithms (grd, grdlazy, beam, localsearch, anneal) return
//     their feasible best-so-far with Result.Stopped set.
//   - Sessions: NewScheduler(inst, k, opts...) opens a mutable
//     scheduling session — AddEvent, CancelEvent, UpdateInterest,
//     AddCompeting, Pin, Forbid — whose Resolve(ctx) repairs the
//     schedule incrementally, rescoring only what the mutations
//     invalidated while matching from-scratch GRD exactly.
//   - Serving: NewStore(opts...) opens a sharded, thread-safe
//     registry of named sessions — the in-process multi-organizer
//     layer behind the sesd daemon. ApplyBatch groups mutations into
//     one incremental resolve, Snapshot/Restore move whole sessions
//     between processes, and Meta reads are lock-free.
//   - Functional options shared by all three: WithWorkers, WithEngine,
//     WithSeed, WithProgress. (The older per-algorithm constructors
//     remain as deprecated wrappers.)
//   - the problem model (Instance, Event, CompetingEvent, Schedule)
//     and utility evaluation (Utility, EventAttendance,
//     AttendanceProb)
//   - a synthetic Meetup-like EBSN generator and the paper-parameter
//     instance builder for experiments
//   - σ (social activity) models, including an estimator from
//     check-in histories
//
// # Architecture: engines and solvers
//
// The scoring/solver stack is split across two internal layers with a
// narrow contract between them.
//
// The choice layer (ses/internal/choice) owns the attendance model
// (Eq. 1–4). An Engine holds a schedule and answers Score (the
// marginal gain of one assignment), ScoreBatch (Score over a list of
// events at one interval — the unit of work the solver layer
// parallelizes), Apply/Unapply (incremental schedule maintenance),
// and the utility accessors. Four implementations exist: Sparse, the
// production engine, keeps per-interval scheduled mass in sorted
// accumulators maintained by incremental merge, making the hot paths
// allocation-free merge-joins; SparseMap is its map-based predecessor
// retained for the old-vs-new ablation benchmark; Dense is the
// paper-faithful O(|U|)-per-score baseline; Ref wraps the definitional
// Reference* oracle functions. Property tests force all of them to
// agree to floating-point accuracy.
//
// What a schedule is worth is a separate, pluggable axis: every
// engine evaluates an Objective — an interval-decomposable fold over
// per-user attendance terms (σ, C, P). Omega, the default, is the
// paper's expected attendance Ω and keeps the engines byte-identical
// to the pre-objective code; AttendanceObjective counts a user only
// once their engagement probability clears a success threshold (after
// the authors' SEP follow-up); FairnessObjective blends attendance
// with an egalitarian n·min participant-share term (after the
// authors' fair virtual-conference scheduling). The engines' mass
// bookkeeping is objective-independent, so Apply/Unapply, forks,
// resets and the parallel scoring pool are untouched; linear
// objectives keep the row-only Score fast path while the nonlinear
// fairness fold re-folds one interval per Score. A differential fuzz
// harness (FuzzEngineOps) holds every engine within 1e-9 of the Ref
// oracle for every registered objective, and solvers report both the
// objective's value (Result.Utility) and the objective-independent Ω
// (Result.Omega).
//
// The solver layer (ses/internal/solver) implements the algorithms on
// top of the Engine interface. Every constructor takes a
// solver.Config carrying the engine factory, the objective and a
// Workers count. The
// scored E×T assignment cross product — the dominant cost of the
// paper's Fig. 1b/1d time series — is built by a shared worklist
// component that fans initial scoring out over a worker pool: each
// worker scores whole intervals against its own Fork of the engine
// and writes to fixed offsets of a preallocated matrix, so schedules,
// utilities and work counters are byte-identical to the serial run
// for any Workers value. GRD, GRDLazy, TOP, TOPFill and Spread start
// from that worklist; Beam expands its live states concurrently; the
// experiment harness (ses/internal/experiment) additionally runs
// independent trials and sensitivity points concurrently.
//
// The session layer (ses/internal/session, exposed as Scheduler)
// sits on top of both: it keeps the instance, a warm engine (engines
// implement Reset for in-place reuse) and the initial-score matrix of
// the last solve. Mutations invalidate a precise slice of that matrix
// — one event row for AddEvent/UpdateInterest, one interval column
// for AddCompeting, nothing for CancelEvent/Pin/Forbid — and Resolve
// patches the slice and reruns only the cheap greedy selection, which
// is why it matches from-scratch GRD bit for bit (equivalence-tested)
// at a fraction of the InitialScores.
//
// For million-user instances a fifth engine breaks the
// O(interested users)-per-score coupling: Pruned (exposed as
// PrunedEngine / PrunedEngineK) wraps Sparse with per-event top-k
// candidate lists and a cached frozen-tail term, scoring empty
// intervals exactly in O(k) and loaded intervals with an O(k) upper
// bound. Engines that can bound advertise it through the choice
// layer's Bounder interface, and GRD's argmax (shared with the
// session layer's greedy selection) becomes a threshold algorithm:
// bound-valued worklist entries are resolved to exact scores only
// when they reach the top of the heap, counted in
// Counters.BoundUpdates. Results stay byte-identical to Sparse —
// enforced by the differential fuzz harness and a metamorphic k=|U|
// degeneracy test — only the work changes. Pairing the pruned engine
// with a columnar instance file (WriteColumnarInstance /
// OpenColumnarInstance, ses/internal/colstore: struct-of-arrays CSR
// sections, memory-mapped zero-copy rows) keeps both open time and
// resident memory sublinear in |U|; sesgen -colstore streams
// power-law instances at any scale and sesbench -fig scale commits
// the measured latency curve to BENCH_scale.json.
//
// From this facade, pass WithWorkers(n) or WithObjective(obj) to New
// or NewScheduler; sessolve and sesbench expose the same knobs as
// -workers and -objective. For a Scheduler the objective is session
// state: it travels in snapshots (which bumped the snapshot format to
// version 2) and survives restore.
//
// # Architecture: the serving layer
//
// The store layer (ses/internal/store, exposed as Store) turns the
// single-session Scheduler into a multi-organizer service. Sessions
// live in a registry striped over fixed lock shards keyed by an
// FNV-1a hash of the session id, so registry operations only contend
// within one stripe and never behind a running solve. Each session
// handle additionally publishes an immutable Meta value through an
// atomic pointer after every commit; Meta/Metas reads load the
// pointer without taking any session lock, which keeps dashboards and
// load balancers off the solving hot path. ApplyBatch applies a group
// of mutations — each one cheap bookkeeping with precise score-cache
// invalidation — and commits them with a single incremental Resolve,
// producing exactly the outcome of the same mutations applied
// one-by-one followed by one Resolve (test-enforced).
//
// Snapshots (ses/internal/snap) serialize a session's full state —
// instance, cancellations, pins, forbids, committed schedule — behind
// a format version, as canonical JSON for the wire and a gob-based
// binary form for disk. restore(snapshot(s)) is byte-identical and
// malformed input always errors (fuzz-enforced); process-local
// configuration (engine, workers) deliberately stays outside the
// snapshot and is re-supplied at restore.
//
// On real cores the store is driven through a resolve pipeline
// (NewPipeline over a Store or DurableStore): requests enqueue on
// per-session queues, back-to-back work on the same session coalesces
// into ONE incremental resolve whose result every coalesced waiter
// shares — with add-mutation ids split back per request — and
// distinct dirty sessions are claimed by a bounded worker pool
// (WithResolveWorkers, default all cores), so independent sessions
// resolve concurrently while each session's operations stay strictly
// serialized. The outcome is byte-identical to executing the
// acknowledged operation order serially (equivalence-tested for both
// Store and DurableStore). Admission control bounds the pending
// request count (WithResolveQueue): past the bound, submits fail fast
// with ErrPipelineSaturated instead of queueing without limit, and a
// queued request whose context is cancelled withdraws cleanly.
// Pipeline.Metrics exposes queue depth and the
// submitted/executed/coalesced/rejected counters.
//
// The sesd command serves the store over HTTP JSON (create, mutate,
// batch, resolve, snapshot, restore, metrics), routing resolves and
// batches through such a pipeline (-resolve-workers, -resolve-queue;
// saturation maps to 503, pipeline and WAL counters appear under
// /v1/metrics) while requests carrying an explicit ?timeout= bypass
// it so their deadline flows into their own anytime resolve; sesload
// drives N concurrent sessions against a Store with a mixed
// mutate/resolve/snapshot workload and writes throughput/latency
// percentiles to BENCH_store.json.
//
// # Architecture: the durability layer
//
// The durability layer (ses/internal/wal plus the durable store in
// ses/internal/store, exposed as DurableStore via OpenStore) makes
// the serving layer crash-recoverable. Each registry shard owns an
// append-only write-ahead log of length-prefixed, CRC32-checksummed
// records; a durable Create/Delete/Restore/ApplyBatch/Resolve applies
// in memory, then appends one record — the logical mutations (the
// same tagged-union wire form sesd's batch endpoint speaks) paired
// with a physical commit stamp (schedule, utility, stop reason,
// cumulative counters) — and fsyncs per the configured sync policy
// (always / interval / none) before acknowledging. Under SyncAlways,
// WithGroupCommit amortizes that fsync across concurrent appenders:
// waiters enqueue on a per-shard commit queue and a leader writes the
// whole batch under ONE fsync before acknowledging everyone, leaving
// the on-disk format and the durability guarantee unchanged
// frame-for-frame while multiplying concurrent append throughput
// (BENCH_wal.json's group_commit section). Recovery loads
// each shard's newest checkpoint (full binary snapshots via the snap
// codec), re-applies the logged mutations and installs the stamped
// outcomes verbatim, so every acknowledged session State returns
// byte-identical — including deadline-stopped best-so-far schedules a
// re-run could not reproduce — while a torn log tail loses only the
// record being written when the process died, which was never
// acknowledged. Background checkpoints bound both log size and
// recovery time by truncating the segments they cover; Close drains,
// checkpoints and leaves a log that replays nothing. The crash matrix
// in the test suite cuts a 200+-mutation log at every record boundary
// and at torn offsets and asserts recovery always lands on exactly a
// committed prefix. The seswal command inspects, verifies and dumps
// log directories offline.
//
// # Architecture: the replication layer
//
// The cluster layer (ses/internal/cluster, surfaced here as
// ClusterRing, WALCursor and WALTailer) replicates durable stores
// across nodes. Placement is a consistent-hash ring over the peer
// set — every member and the router build the identical ring from the
// identical -peers map, so a session's primary needs no coordination
// to compute. Each node follows every peer: a streaming HTTP endpoint
// (/v1/replication/stream) tails the primary's per-shard WALs live
// via WALTailer — across segment rotation, stopping cleanly at torn
// tails — and the follower applies the records through the same
// replay path recovery uses, into an in-memory replica store serving
// lock-free Meta and read fallbacks while staying warm for takeover.
// Because a record is shipped only after the primary's group-commit
// fsync acknowledged it, replication never advertises state the
// primary could lose. Shipping is asynchronous by default; with
// -replicate-ack N each mutation response additionally waits until N
// distinct followers have durably applied the record (followers post
// applied cursors back to the primary), degrading to 503 past a
// bounded wait rather than overstating durability. The sesd daemon
// joins a cluster with -node-id and -peers (health and readiness on
// /v1/healthz and /v1/readyz, replication lag under /v1/metrics); the
// sesrouter command fronts the cluster, routing mutations to
// primaries, fanning reads across followers, and on node death
// promoting the follower with the highest replication cursor — the
// survivor first pulls any shard a surviving peer applied further,
// adopts the dead node's sessions durably (counters preserved
// exactly), then re-replicates the adopted shards through the mesh on
// its own, with watermarks on /v1/replication/status. Promotions
// carry a fsync-persisted monotonic epoch: stale proposals and stale
// routers are fenced with 409, so concurrent routers cannot promote
// divergent survivors, and the promotion is sticky until an operator
// reroutes. sesload -cluster drives a cluster with
// acknowledged-operation accounting, and its -check-acks mode proves
// after a kill -9 that nothing acknowledged was lost; sesbench -fig
// cluster prices node-count scaling, the -replicate-ack 1 ack-wait
// cost, and the failover timeline into BENCH_cluster.json.
//
// # Architecture: the observability layer
//
// The observability layer (ses/internal/obs, surfaced here as
// Observability / NewObservability / WithObservability) threads three
// zero-dependency instruments through every layer above. A
// context-carried tracer opens a root span per sesd request and child
// spans at each stage boundary — pipeline ride, session resolve,
// incremental scoring, greedy selection, WAL fsync wait, replication
// ack wait — into a bounded in-memory ring served at /v1/traces;
// trace IDs propagate across router and replication hops via the
// X-Ses-Trace header, and followers record remote replication.apply
// spans under the primary's IDs, so one ID shows a write's full
// cross-node story. A lock-free metrics registry (counters, gauges,
// fixed-bucket histograms, scrape-time collectors) renders Prometheus
// text exposition at /metrics on both sesd and sesrouter. A
// per-session fan-out hub bridges solver progress callbacks and
// committed deltas to GET /v1/sessions/{name}/watch as server-sent
// events, evicting subscribers that stop reading so a slow dashboard
// can never stall a solve; sesd serves an embedded single-file
// dashboard over it at /. Untraced requests and stores built without
// WithObservability pay only nil checks — sesbench -fig obs prices
// the fully-instrumented path into BENCH_obs.json.
//
// # Quick start
//
//	ds, _ := ses.GenerateEBSN(ses.EBSNConfig{Seed: 1, NumUsers: 2000,
//	    NumEvents: 1000, NumTags: 2000, NumGroups: 50})
//	inst, _ := ses.BuildInstance(ds, ses.PaperParams{K: 20, Seed: 1})
//	grd, _ := ses.New("grd", ses.WithWorkers(8))
//	res, _ := grd.Solve(ctx, inst, 20)
//	fmt.Printf("Ω = %.1f expected attendees\n", res.Utility)
//
// Or, for a living portfolio:
//
//	sched, _ := ses.NewScheduler(inst, 20)
//	sched.Resolve(ctx)                        // full solve, cached
//	id, _ := sched.AddEvent(ev, interest)     // a late booking
//	delta, _ := sched.Resolve(ctx)            // incremental repair
//
// See examples/ (examples/booking walks the session workflow) and
// README.md for a quickstart, the solver table and the command-line
// tools that reproduce the paper's figures.
package ses
