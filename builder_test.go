package ses_test

import (
	"math"
	"strings"
	"testing"

	"ses"
)

// festivalInstance hand-builds the paper's introductory Summerfest
// scenario: Alice (user 0) likes Pop music and fashion; a Pop concert
// and a fashion show are candidates, a rival venue's Pop concert
// competes at interval 0.
func festivalInstance() *ses.Instance {
	b := ses.NewInstanceBuilder(3, 2, 10)
	pop := b.AddEvent(0, 4, "pop-concert")
	fashion := b.AddEvent(1, 3, "fashion-show")
	theater := b.AddEvent(2, 5, "theater")
	rival := b.AddCompeting(0, "rival-pop-concert")
	// Alice.
	b.SetInterest(0, pop, 0.9)
	b.SetInterest(0, fashion, 0.7)
	b.SetCompetingInterest(0, rival, 0.6)
	// Bob: theater fan.
	b.SetInterest(1, theater, 0.8)
	b.SetInterest(1, pop, 0.2)
	// Carol: fashion only.
	b.SetInterest(2, fashion, 0.5)
	inst, err := b.Build()
	if err != nil {
		panic(err)
	}
	return inst
}

func TestBuilderHappyPath(t *testing.T) {
	inst := festivalInstance()
	if inst.NumEvents() != 3 || len(inst.Competing) != 1 {
		t.Fatalf("events=%d competing=%d", inst.NumEvents(), len(inst.Competing))
	}
	if inst.CandInterest.Mu(0, 0) != 0.9 {
		t.Errorf("µ(alice, pop) = %v", inst.CandInterest.Mu(0, 0))
	}
	if inst.CompInterest.Mu(0, 0) != 0.6 {
		t.Errorf("µ(alice, rival) = %v", inst.CompInterest.Mu(0, 0))
	}
}

func TestBuilderLuceSplit(t *testing.T) {
	// Schedule pop and fashion both at interval 0 (the rival is
	// there): Alice's attendance must split per Luce:
	// ρ(pop) = 0.9/(0.6+0.9+0.7), ρ(fashion) = 0.7/(0.6+0.9+0.7).
	inst := festivalInstance()
	s := ses.NewSchedule(inst)
	if err := s.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(1, 0); err != nil {
		t.Fatal(err)
	}
	den := 0.6 + 0.9 + 0.7
	if got, want := ses.AttendanceProb(inst, s, 0, 0), 0.9/den; math.Abs(got-want) > 1e-12 {
		t.Errorf("ρ(alice,pop) = %v, want %v", got, want)
	}
	if got, want := ses.AttendanceProb(inst, s, 0, 1), 0.7/den; math.Abs(got-want) > 1e-12 {
		t.Errorf("ρ(alice,fashion) = %v, want %v", got, want)
	}
	// Moving fashion to interval 1 (no rival there) should raise both
	// probabilities — the scheduling insight of the paper's intro.
	s2 := ses.NewSchedule(inst)
	_ = s2.Assign(0, 0)
	_ = s2.Assign(1, 1)
	if got := ses.AttendanceProb(inst, s2, 0, 1); math.Abs(got-0.7/0.7) > 1e-12 {
		t.Errorf("ρ(alice,fashion alone) = %v, want 1 (σ=1, no competition)", got)
	}
	if ses.Utility(inst, s2) <= ses.Utility(inst, s) {
		t.Error("separating conflicting events should increase utility")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := ses.NewInstanceBuilder(2, 1, 5)
	e := b.AddEvent(0, 1, "e")
	b.SetInterest(5, e, 0.5) // bad user
	if _, err := b.Build(); err == nil {
		t.Error("bad user accepted")
	}
	b2 := ses.NewInstanceBuilder(2, 1, 5)
	b2.SetInterest(0, 7, 0.5) // event not added
	if _, err := b2.Build(); err == nil {
		t.Error("bad event accepted")
	}
	b3 := ses.NewInstanceBuilder(2, 1, 5)
	e3 := b3.AddEvent(0, 1, "e")
	b3.SetInterest(0, e3, 1.5) // µ out of range
	if _, err := b3.Build(); err == nil {
		t.Error("µ > 1 accepted")
	}
	b4 := ses.NewInstanceBuilder(2, 1, 5)
	c4 := b4.AddCompeting(0, "c")
	b4.SetCompetingInterest(0, c4, -0.1)
	if _, err := b4.Build(); err == nil {
		t.Error("negative competing µ accepted")
	}
}

func TestBuilderValidatesAddEagerly(t *testing.T) {
	// Negative locations, negative required resources and out-of-range
	// competing intervals are caught at Add time, not at Build, and
	// the error names the offending call.
	cases := []struct {
		name  string
		build func() *ses.InstanceBuilder
		want  string
	}{
		{"negative location", func() *ses.InstanceBuilder {
			b := ses.NewInstanceBuilder(2, 2, 5)
			b.AddEvent(-1, 1, "bad-loc")
			return b
		}, "AddEvent"},
		{"negative required", func() *ses.InstanceBuilder {
			b := ses.NewInstanceBuilder(2, 2, 5)
			b.AddEvent(0, -3, "bad-req")
			return b
		}, "AddEvent"},
		{"competing interval too large", func() *ses.InstanceBuilder {
			b := ses.NewInstanceBuilder(2, 2, 5)
			b.AddCompeting(2, "bad-interval")
			return b
		}, "AddCompeting"},
		{"competing interval negative", func() *ses.InstanceBuilder {
			b := ses.NewInstanceBuilder(2, 2, 5)
			b.AddCompeting(-1, "bad-interval")
			return b
		}, "AddCompeting"},
	}
	for _, tc := range cases {
		_, err := tc.build().Build()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
}

func TestBuilderAddErrorDoesNotMaskFirst(t *testing.T) {
	// The first error wins even when later Adds are also invalid.
	b := ses.NewInstanceBuilder(2, 2, 5)
	e := b.AddEvent(0, 1, "ok")
	b.SetInterest(9, e, 0.5)  // first error: bad user
	b.AddEvent(-1, 1, "late") // would error, but builder is poisoned
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "SetInterest") {
		t.Errorf("got %v, want the SetInterest error", err)
	}
}

func TestBuilderErrorsStick(t *testing.T) {
	// After the first error, subsequent calls are no-ops and Build
	// reports the original problem.
	b := ses.NewInstanceBuilder(1, 1, 5)
	e := b.AddEvent(0, 1, "e")
	b.SetInterest(9, e, 0.5)
	b.SetInterest(0, e, 0.5) // would be fine, but builder is poisoned
	if _, err := b.Build(); err == nil {
		t.Error("poisoned builder built anyway")
	}
}
