// Benchmarks mirroring the paper's evaluation (Fig. 1a–1d) plus the
// ablations called out in DESIGN.md.
//
// Every figure panel has a bench family whose sub-benchmarks are the
// series points. ns/op is the running-time series (Fig. 1b/1d); the
// custom "utility" metric is the utility series (Fig. 1a/1c); the
// "scheduled" metric shows how many events each solver actually
// placed. Benches run on a reduced-scale dataset (8K of the paper's
// 42,444 users) so `go test -bench=.` completes in minutes; the
// cmd/sesbench harness reproduces the figures at full Meetup scale.
package ses_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ses"
	"ses/internal/choice"
	"ses/internal/solver"
)

var (
	benchDSOnce sync.Once
	benchDS     *ses.Dataset
)

// benchDataset generates the shared bench-scale EBSN snapshot.
func benchDataset(b *testing.B) *ses.Dataset {
	b.Helper()
	benchDSOnce.Do(func() {
		ds, err := ses.GenerateEBSN(ses.EBSNConfig{
			Seed:      99,
			NumUsers:  8000,
			NumEvents: 4096,
			NumTags:   3000,
			NumGroups: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	})
	return benchDS
}

// benchInstance builds one paper-parameter instance.
func benchInstance(b *testing.B, k, intervals int) *ses.Instance {
	b.Helper()
	inst, err := ses.BuildInstance(benchDataset(b), ses.PaperParams{
		K:         k,
		Intervals: intervals,
		Seed:      uint64(k*1000 + intervals),
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// benchSolvers are the paper's three methods.
func benchSolvers(seed uint64) map[string]ses.Solver {
	return map[string]ses.Solver{
		"grd":  ses.Greedy(),
		"top":  ses.Top(),
		"rand": ses.Random(seed),
	}
}

// runSolver is the common bench body: repeated solves with utility
// and schedule size reported as custom metrics.
func runSolver(b *testing.B, inst *ses.Instance, s ses.Solver, k int) {
	b.Helper()
	b.ResetTimer()
	var res *ses.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Solve(context.Background(), inst, k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Utility, "utility")
	b.ReportMetric(float64(res.Schedule.Size()), "scheduled")
}

// BenchmarkFig1a_UtilityVsK is the Fig. 1a/1b sweep: vary the number
// of scheduled events k with |T| = 3k/2 and |E| = 2k. The "utility"
// metric reproduces Fig. 1a; ns/op reproduces Fig. 1b.
func BenchmarkFig1a_UtilityVsK(b *testing.B) {
	for _, k := range []int{50, 100, 200} {
		inst := benchInstance(b, k, 3*k/2)
		for name, s := range benchSolvers(uint64(k)) {
			b.Run(fmt.Sprintf("k=%d/%s", k, name), func(b *testing.B) {
				runSolver(b, inst, s, k)
			})
		}
	}
}

// BenchmarkFig1c_UtilityVsT is the Fig. 1c/1d sweep: k fixed at the
// paper default 100, |T| varied from k/5 to 3k. The "utility" metric
// reproduces Fig. 1c; ns/op reproduces Fig. 1d.
func BenchmarkFig1c_UtilityVsT(b *testing.B) {
	const k = 100
	for _, t := range []int{20, 50, 100, 150, 300} {
		inst := benchInstance(b, k, t)
		for name, s := range benchSolvers(uint64(t)) {
			b.Run(fmt.Sprintf("T=%d/%s", t, name), func(b *testing.B) {
				runSolver(b, inst, s, k)
			})
		}
	}
}

// BenchmarkAblationLazyGreedy compares the paper's eager list-scan GRD
// against the CELF-style lazy-heap variant (identical output).
func BenchmarkAblationLazyGreedy(b *testing.B) {
	const k = 100
	inst := benchInstance(b, k, 3*k/2)
	b.Run("grd-eager-list", func(b *testing.B) { runSolver(b, inst, ses.Greedy(), k) })
	b.Run("grd-lazy-heap", func(b *testing.B) { runSolver(b, inst, ses.LazyGreedy(), k) })
}

// BenchmarkAblationEngine compares the sparse production engine with
// the paper-faithful dense O(|U|)-per-score engine, via GRD on a small
// instance (the dense engine's cost is dominated by |U| = 8000).
func BenchmarkAblationEngine(b *testing.B) {
	const k = 20
	ds := benchDataset(b)
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: k, Intervals: 30, CandidateEvents: 40, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sparse", func(b *testing.B) {
		s := solver.NewGRD(solver.Config{})
		runSolverInternal(b, inst, s, k)
	})
	b.Run("dense", func(b *testing.B) {
		s := solver.NewGRD(solver.Config{Engine: solver.DenseEngine})
		runSolverInternal(b, inst, s, k)
	})
}

func runSolverInternal(b *testing.B, inst *ses.Instance, s solver.Solver, k int) {
	b.Helper()
	b.ResetTimer()
	var res *solver.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Solve(context.Background(), inst, k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Utility, "utility")
}

// BenchmarkAblationTOPVariants quantifies how much of TOP's weakness
// comes from discarding invalid top-k picks (paper TOP) versus from
// stale scores alone (TOPFill walks the list until k valid picks).
func BenchmarkAblationTOPVariants(b *testing.B) {
	const k = 100
	inst := benchInstance(b, k, 3*k/2)
	b.Run("top-paper", func(b *testing.B) { runSolver(b, inst, ses.Top(), k) })
	b.Run("top-fill", func(b *testing.B) { runSolver(b, inst, ses.TopFill(), k) })
}

// BenchmarkAblationRefinement measures what hill climbing and
// annealing add on top of the constructive solvers.
func BenchmarkAblationRefinement(b *testing.B) {
	const k = 40
	ds := benchDataset(b)
	inst, err := ses.BuildInstance(ds, ses.PaperParams{
		K: k, Intervals: 60, CandidateEvents: 80, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("grd", func(b *testing.B) { runSolver(b, inst, ses.Greedy(), k) })
	b.Run("grd+localsearch", func(b *testing.B) { runSolver(b, inst, ses.LocalSearch(), k) })
	b.Run("anneal", func(b *testing.B) { runSolver(b, inst, ses.Anneal(3, 4000), k) })
}

// BenchmarkScoreComputation isolates one Eq. 4 evaluation — the unit
// the paper's complexity analysis counts — on both engines.
func BenchmarkScoreComputation(b *testing.B) {
	inst := benchInstance(b, 100, 150)
	b.Run("sparse", func(b *testing.B) {
		eng := choice.NewSparse(inst)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.Score(i%inst.NumEvents(), i%inst.NumIntervals)
		}
	})
	b.Run("dense", func(b *testing.B) {
		eng := choice.NewDense(inst)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.Score(i%inst.NumEvents(), i%inst.NumIntervals)
		}
	})
}

// BenchmarkInstanceBuild measures dataset→instance assembly (inverted
// index probing + interest matrices), which the harness excludes from
// solver timings.
func BenchmarkInstanceBuild(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.BuildInstance(ds, ses.PaperParams{K: 50, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
