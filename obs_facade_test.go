package ses_test

import (
	"context"
	"encoding/json"
	"testing"

	"ses"
)

// TestObservabilityFacadeDurable pins the durable wiring: OpenStore
// threads the hub sink through the WAL-backed store too, so watchers
// of a durable daemon see progress and commit events exactly like the
// memory store's (the sink is installed before recovery, covering
// recovered sessions as well).
func TestObservabilityFacadeDurable(t *testing.T) {
	o := ses.NewObservability(ses.ObservabilityOptions{TraceRing: 8})
	st, err := ses.OpenStore(ses.WithDurability(t.TempDir()), ses.WithWorkers(1), ses.WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Create("fest", storeInstance(t), 3); err != nil {
		t.Fatal(err)
	}
	sub := o.Hub.Subscribe("fest", 64)
	defer sub.Close()
	if _, err := st.ApplyBatch(context.Background(), "fest", []ses.Mutation{ses.UpdateInterestOp(0, 0, 0.7)}); err != nil {
		t.Fatal(err)
	}
	var progress, commit int
drain:
	for {
		select {
		case ev := <-sub.Events():
			switch ev.Type {
			case "progress":
				progress++
			case "commit":
				commit++
			}
		default:
			break drain
		}
	}
	if progress == 0 || commit != 1 {
		t.Errorf("durable store: %d progress / %d commit events, want >=1 / exactly 1", progress, commit)
	}
}

// TestObservabilityFacade drives the public observability surface:
// NewObservability wires the pieces, WithObservability threads the
// hub sink through a store so subscribers see progress and commit
// events, TraceFromContext reads the serving layer's trace binding,
// and traced requests land in the ring.
func TestObservabilityFacade(t *testing.T) {
	o := ses.NewObservability(ses.ObservabilityOptions{TraceRing: 8})
	if o.Tracer == nil || o.Metrics == nil || o.Hub == nil {
		t.Fatalf("NewObservability left pieces nil: %+v", o)
	}

	inst := storeInstance(t)
	st := ses.NewStore(ses.WithWorkers(1), ses.WithObservability(o))
	if err := st.Create("fest", inst, 3); err != nil {
		t.Fatal(err)
	}
	sub := o.Hub.Subscribe("fest", 64)
	defer sub.Close()

	ctx, sp := o.Tracer.StartRoot(context.Background(), "handler", "")
	if got := ses.TraceFromContext(ctx); got != sp.TraceID() {
		t.Errorf("TraceFromContext = %q, want %q", got, sp.TraceID())
	}
	if got := ses.TraceFromContext(context.Background()); got != "" {
		t.Errorf("TraceFromContext(untraced) = %q, want empty", got)
	}

	if _, err := st.ApplyBatch(ctx, "fest", []ses.Mutation{ses.UpdateInterestOp(0, 0, 0.7)}); err != nil {
		t.Fatal(err)
	}
	sp.End()

	// The sink publishes synchronously during the commit, so every
	// event is buffered by the time ApplyBatch returns.
	var progress, commit int
drain:
	for {
		select {
		case ev := <-sub.Events():
			switch ev.Type {
			case "progress":
				progress++
				var p struct {
					Solver string `json:"solver"`
				}
				if err := json.Unmarshal(ev.Data, &p); err != nil || p.Solver == "" {
					t.Fatalf("progress payload %s (err %v)", ev.Data, err)
				}
			case "commit":
				commit++
				var c struct {
					Meta struct {
						Batches uint64
					} `json:"meta"`
				}
				if err := json.Unmarshal(ev.Data, &c); err != nil || c.Meta.Batches != 1 {
					t.Fatalf("commit payload %s (err %v), want Batches=1", ev.Data, err)
				}
			}
		default:
			break drain
		}
	}
	if progress == 0 || commit != 1 {
		t.Errorf("saw %d progress / %d commit events, want >=1 / exactly 1", progress, commit)
	}

	// The traced batch is queryable in the ring under its ID.
	if _, ok := o.Tracer.Trace(sp.TraceID()); !ok {
		t.Errorf("trace %s missing from the ring", sp.TraceID())
	}

	// Without subscribers the sink publishes nothing (idle cost path).
	sub.Close()
	if _, err := st.ApplyBatch(context.Background(), "fest", []ses.Mutation{ses.UpdateInterestOp(1, 0, 0.4)}); err != nil {
		t.Fatal(err)
	}
	if got := o.Hub.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers after close = %d, want 0", got)
	}
}
