package ses

// Replication surface of the facade: the consistent-hash placement
// ring and the live WAL-tailing primitives that the cluster layer
// (ses/internal/cluster, served by cmd/sesd -node-id/-peers and
// fronted by cmd/sesrouter) is built from. They are exposed so
// deployment tooling can compute placement (which node owns a
// session) and follow a node's log without linking the internal
// packages.

import (
	"ses/internal/cluster"
	"ses/internal/store"
	"ses/internal/wal"
)

// NumShards is the per-store WAL stripe width: a durable store keeps
// one log directory per shard and replication ships each shard as an
// independent stream with its own WALCursor.
const NumShards = store.NumShards

// ShardOf returns the shard index a session name hashes to — the
// same FNV-1a placement the store registry and the ClusterRing's
// hash family use.
func ShardOf(name string) int { return store.ShardOf(name) }

// ShardDir names shard i's log directory under a durable store
// rooted at dir; point a WALTailer (or seswal tail) at it.
func ShardDir(dir string, i int) string { return store.ShardDir(dir, i) }

// ClusterRing is the consistent-hash ring that places sessions on
// node IDs: every node contributes virtual points, a session lands on
// the first point clockwise of its hash, and Successors lists the
// distinct follow-on nodes (the replica order). All cluster members
// and the router build the identical ring from the identical peer
// set, so placement needs no coordination.
type ClusterRing = cluster.Ring

// DefaultVNodes is the virtual-node count per physical node when 0 is
// passed to NewClusterRing.
const DefaultVNodes = cluster.DefaultVNodes

// NewClusterRing builds a placement ring over the node IDs with
// vnodes virtual points each (0 = DefaultVNodes). The node set and
// vnodes must match across every member for placement to agree.
func NewClusterRing(nodes []string, vnodes int) (*ClusterRing, error) {
	return cluster.NewRing(nodes, vnodes)
}

// WALCursor is a durable position in one shard's write-ahead log:
// segment sequence number plus byte offset. Replication followers
// persist one per shard and resume streaming from it; cursors order
// by Before within one log.
type WALCursor = wal.Cursor

// WALTailer follows a live WAL directory record-by-record across
// segment rotation, stopping cleanly at a torn tail (an acknowledged
// record is never skipped, a half-written one is never surfaced). It
// is the read side of the replication stream sesd serves on
// /v1/replication/stream; seswal tail wraps it on the command line.
type WALTailer = wal.Tailer

// WALTailerOptions tunes a WALTailer; the zero value is ready to use.
type WALTailerOptions = wal.TailerOptions

// NewWALTailer opens a tailer over a shard's log directory starting
// at from (the zero cursor means the oldest retained record).
func NewWALTailer(dir string, from WALCursor, opts WALTailerOptions) *WALTailer {
	return wal.NewTailer(dir, from, opts)
}
