package ses

import (
	"ses/internal/activity"
	"ses/internal/choice"
	"ses/internal/core"
	"ses/internal/dataset"
	"ses/internal/ebsn"
	"ses/internal/interest"
	"ses/internal/sim"
	"ses/internal/solver"
)

// Problem model (see ses/internal/core).
type (
	// Instance is a complete SES problem instance.
	Instance = core.Instance
	// Event is a candidate event with a location and resource needs.
	Event = core.Event
	// CompetingEvent is a third-party event pinned to an interval.
	CompetingEvent = core.CompetingEvent
	// Schedule is a feasible set of event→interval assignments.
	Schedule = core.Schedule
	// Assignment is one event→interval pair.
	Assignment = core.Assignment
	// Activity models σ(user, interval).
	Activity = core.Activity
)

// Solving (see ses/internal/solver).
type (
	// Solver finds a feasible schedule of up to k events maximizing
	// expected attendance. Solve takes a context: cancellation is
	// observed promptly by every algorithm, and a deadline makes the
	// anytime algorithms (grd, grdlazy, beam, localsearch, anneal)
	// return their feasible best-so-far with Result.Stopped set.
	Solver = solver.Solver
	// Result is a solver outcome: schedule, utility, work counters
	// and the early-stop reason (if any).
	Result = solver.Result
	// Counters records the work a solver or session performed.
	Counters = solver.Counters
	// SolverConfig carries the cross-cutting solver options: the
	// choice-engine factory, the number of goroutines used for
	// initial scoring (Workers; 0 = GOMAXPROCS, 1 = serial) and the
	// progress callback. Results are byte-identical regardless of
	// Workers. Most callers should use New with functional options
	// instead of building one directly.
	SolverConfig = solver.Config
)

// StoppedDeadline is the Result.Stopped (and Delta.Stopped) reason
// set when an anytime solve returned its best-so-far because the
// context deadline expired.
const StoppedDeadline = solver.StoppedDeadline

// New returns a solver by name — any name in SolverNames() —
// configured by functional options:
//
//	s, err := ses.New("grd", ses.WithWorkers(8), ses.WithProgress(logFn))
//	res, err := s.Solve(ctx, inst, k)
//
// Randomized algorithms (rand, anneal, online) take their seed from
// WithSeed; the others ignore it.
func New(name string, opts ...Option) (Solver, error) {
	c := resolve(opts)
	return solver.NewWith(name, c.seed, c.solverConfig())
}

// Data generation (see ses/internal/ebsn and ses/internal/dataset).
type (
	// EBSNConfig parameterizes the synthetic Meetup-like network.
	EBSNConfig = ebsn.Config
	// Dataset is a generated EBSN snapshot.
	Dataset = ebsn.Dataset
	// PaperParams are the experiment parameters of the paper's
	// Section IV-A; zero values take the paper's defaults.
	PaperParams = dataset.PaperParams
	// TagSet is a sorted set of interest tags.
	TagSet = interest.TagSet
	// SocialConfig parameterizes friendship-graph generation.
	SocialConfig = ebsn.SocialConfig
	// SocialGraph is an undirected friendship graph over a dataset's
	// users; build one with Dataset.GenerateSocialGraph and blend it
	// into interest with Dataset.SocialInterestFor.
	SocialGraph = ebsn.SocialGraph
)

// Unassigned marks an event that is not part of a schedule.
const Unassigned = core.Unassigned

// NewSchedule returns an empty schedule for the instance.
func NewSchedule(inst *Instance) *Schedule { return core.NewSchedule(inst) }

// Greedy returns the paper's GRD algorithm (Algorithm 1): pop the
// globally best assignment, apply it, update same-interval scores.
//
// Deprecated: use New("grd", opts...).
func Greedy() Solver { return solver.NewGRD(solver.Config{}) }

// LazyGreedy returns the CELF-style lazy variant of GRD. It produces
// identical schedules with far fewer score evaluations.
//
// Deprecated: use New("grdlazy", opts...).
func LazyGreedy() Solver { return solver.NewGRDLazy(solver.Config{}) }

// Top returns the paper's TOP baseline: the k best-scoring assignments
// by initial score, invalid picks discarded.
//
// Deprecated: use New("top", opts...).
func Top() Solver { return solver.NewTOP(solver.Config{}) }

// TopFill returns the stronger TOP variant that keeps walking the
// sorted assignment list until k valid assignments are found.
//
// Deprecated: use New("topfill", opts...).
func TopFill() Solver { return solver.NewTOPFill(solver.Config{}) }

// Random returns the paper's RAND baseline with the given seed.
//
// Deprecated: use New("rand", WithSeed(seed)).
func Random(seed uint64) Solver { return solver.NewRAND(seed, solver.Config{}) }

// ExactSolver returns the exhaustive branch-and-bound solver. It is
// exponential; use it only on small instances to measure optimality
// gaps.
//
// Deprecated: use New("exact", opts...).
func ExactSolver() Solver { return solver.NewExact(solver.Config{}) }

// LocalSearch returns a hill climber (relocate + swap moves) starting
// from GRD's schedule.
//
// Deprecated: use New("localsearch", opts...).
func LocalSearch() Solver { return solver.NewLocalSearch(nil, 0, solver.Config{}) }

// Anneal returns a simulated-annealing solver with the given seed and
// step budget (steps <= 0 chooses a budget from the instance size).
//
// Deprecated: use New("anneal", WithSeed(seed)); the step budget then
// always derives from the instance size.
func Anneal(seed uint64, steps int) Solver { return solver.NewAnneal(seed, steps, solver.Config{}) }

// Beam returns a beam-search solver (width/branch <= 0 pick defaults).
//
// Deprecated: use New("beam", opts...) for the default width and
// branch factors.
func Beam(width, branch int) Solver { return solver.NewBeam(width, branch, solver.Config{}) }

// Online returns the streaming solver: events arrive in a
// seed-determined order and are accepted or rejected irrevocably.
//
// Deprecated: use New("online", WithSeed(seed)).
func Online(seed uint64) Solver { return solver.NewOnline(seed, solver.Config{}) }

// Spread returns the spreading baseline: TOP's one-shot ranking with
// least-loaded interval placement.
//
// Deprecated: use New("spread", opts...).
func Spread() Solver { return solver.NewSpread(solver.Config{}) }

// GreedyWith returns GRD carrying an explicit configuration.
//
// Deprecated: use New("grd", WithWorkers(n), WithEngine(f), ...).
func GreedyWith(cfg SolverConfig) Solver { return solver.NewGRD(cfg) }

// NewSolver returns a solver by name; SolverNames lists every
// registered name. Randomized solvers (rand, anneal, online) use the
// seed, the others ignore it.
//
// Deprecated: use New(name, WithSeed(seed)).
func NewSolver(name string, seed uint64) (Solver, error) { return solver.New(name, seed) }

// NewSolverWith returns a solver by name carrying an explicit
// configuration; SolverNames lists every registered name.
//
// Deprecated: use New(name, opts...).
func NewSolverWith(name string, seed uint64, cfg SolverConfig) (Solver, error) {
	return solver.NewWith(name, seed, cfg)
}

// SolverNames lists the registered solver names.
func SolverNames() []string { return solver.Names() }

// Utility computes Ω(S) (Eq. 3): the total expected attendance of the
// schedule.
func Utility(inst *Instance, s *Schedule) float64 {
	return choice.ReferenceUtility(inst, s)
}

// EventAttendance computes ω (Eq. 2): the expected attendance of
// scheduled event e. Returns 0 for unscheduled events.
func EventAttendance(inst *Instance, s *Schedule, e int) float64 {
	return choice.ReferenceEventAttendance(inst, s, e)
}

// AttendanceProb computes ρ (Eq. 1): the probability that user u
// attends scheduled event e.
func AttendanceProb(inst *Instance, s *Schedule, u, e int) float64 {
	return choice.ReferenceAttendanceProb(inst, s, u, e)
}

// GenerateEBSN builds a synthetic Meetup-like dataset; zero config
// fields take Meetup-California-scale defaults (42,444 users, 16K
// events).
func GenerateEBSN(cfg EBSNConfig) (*Dataset, error) { return ebsn.Generate(cfg) }

// BuildInstance samples a problem instance from the dataset using the
// paper's experimental parameters.
func BuildInstance(ds *Dataset, p PaperParams) (*Instance, error) {
	return dataset.BuildInstance(ds, p)
}

// UniformActivity returns the σ ~ U(0,1) model used in the paper's
// experiments, keyed by seed.
func UniformActivity(seed uint64) Activity { return activity.UniformHash{Seed: seed} }

// ConstantActivity returns a σ model that is p everywhere.
func ConstantActivity(p float64) Activity { return activity.Constant(p) }

// TableActivity wraps an explicit σ matrix indexed [user][interval];
// every entry must lie in [0,1].
func TableActivity(p [][]float64) (Activity, error) { return activity.NewTable(p) }

// Simulation (see ses/internal/sim).
type (
	// SimConfig controls the Monte Carlo attendance simulator.
	SimConfig = sim.Config
	// SimOutcome aggregates realized attendances across simulation
	// runs: per-event and total summaries, defections to competing
	// events, and stay-at-home counts.
	SimOutcome = sim.Outcome
)

// Simulate realizes the schedule's attendance cfg.Runs times by
// drawing each user's activity (Bernoulli σ) and event choice (Luce
// over µ). The mean outcome converges to the analytical Ω/ω; the
// spread quantifies attendance risk that expectations alone hide.
func Simulate(inst *Instance, s *Schedule, cfg SimConfig) (*SimOutcome, error) {
	return sim.Simulate(inst, s, cfg)
}

// CheckIn is one observed outing: a user was out during a recurring
// time slot (e.g. an hour-of-week bucket) of some observation period.
type CheckIn = ebsn.CheckIn

// CheckInConfig parameterizes the synthetic check-in history
// generator.
type CheckInConfig = ebsn.CheckInConfig

// GenerateCheckIns simulates a check-in history for exercising the
// σ-estimation path the paper suggests ("estimated by examining the
// user's past behavior"). The second return value is the generating
// ground truth, for measuring estimator accuracy.
func GenerateCheckIns(cfg CheckInConfig) ([]CheckIn, [][]float64, error) {
	log, truth, err := ebsn.GenerateCheckIns(cfg)
	if err != nil {
		return nil, nil, err
	}
	return log, truth.Prob, nil
}

// EstimateActivity turns a check-in history into a σ model: the
// Laplace-smoothed per-slot outing frequency (pseudo-count alpha) over
// `periods` observation periods, mapped onto instance intervals via
// slotOfInterval (interval t happens during recurring slot
// slotOfInterval[t]).
func EstimateActivity(checkins []CheckIn, numUsers, numSlots, periods int, alpha float64, slotOfInterval []int) (Activity, error) {
	est, err := activity.NewEstimator(numUsers, numSlots, periods, alpha)
	if err != nil {
		return nil, err
	}
	for _, c := range checkins {
		if err := est.Observe(c.User, c.Slot); err != nil {
			return nil, err
		}
	}
	return est.Activity(slotOfInterval)
}

// Jaccard computes the Jaccard similarity of two tag sets, the paper's
// likeness function.
func Jaccard(a, b TagSet) float64 { return interest.Jaccard(a, b) }

// NewTagSet sorts and deduplicates tags into a TagSet.
func NewTagSet(tags []int32) TagSet { return interest.NewTagSet(tags) }
