package ses

import (
	"time"

	"ses/internal/choice"
	"ses/internal/solver"
	"ses/internal/wal"
)

// Option configures solver construction (New) and Scheduler sessions
// (NewScheduler). The same options apply to both surfaces: a session
// is just a solver with retained state, so the knobs — engine choice,
// scoring parallelism, randomization seed, progress streaming — are
// shared.
type Option func(*config)

// config is the resolved option set.
type config struct {
	workers   int
	engine    EngineFactory
	objective Objective
	seed      uint64
	progress  func(Progress)

	// durability (consumed by OpenStore).
	durableDir      string
	syncPolicy      SyncPolicy
	syncInterval    time.Duration
	checkpointEvery int
	groupCommit     wal.GroupCommit

	// pipeline (consumed by NewPipeline).
	resolveWorkers int
	resolveQueue   int

	// observability (consumed by NewStore/OpenStore).
	obs *Observability
}

// solverConfig converts the resolved options to the internal solver
// configuration.
func (c config) solverConfig() SolverConfig {
	return SolverConfig{Engine: c.engine, Objective: c.objective, Workers: c.workers, Progress: c.progress}
}

// resolve applies opts over the defaults.
func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWorkers sets the number of goroutines used for initial scoring
// (0, the default, uses all cores; 1 runs serially). Schedules,
// utilities and counters are byte-identical for any value.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithEngine injects a choice-engine factory — SparseEngine (the
// default) or DenseEngine for ablations.
func WithEngine(f EngineFactory) Option { return func(c *config) { c.engine = f } }

// WithObjective selects what solvers and sessions maximize: Omega
// (the default — the paper's expected attendance Ω), an
// AttendanceObjective (thresholded success-probability attendance),
// or a FairnessObjective (egalitarian min-participant blend). Specs
// parsed by ParseObjective work too. For a Scheduler the objective
// becomes session state: it is exported with snapshots and survives
// restore.
func WithObjective(obj Objective) Option { return func(c *config) { c.objective = obj } }

// WithSeed seeds the randomized algorithms (rand, anneal, online);
// deterministic algorithms ignore it. The default seed is 0.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithProgress streams one Progress notification per assignment
// applied to the solver's (or session's) main engine, synchronously
// from the goroutine running the solve. Use it to drive live UIs or
// logs while a long solve runs; read the final schedule from the
// Result, not from the stream. The callback must not call back into
// the solver or Scheduler it is observing (a Scheduler callback runs
// under the session lock).
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// SyncPolicy selects when a durable store's write-ahead log reaches
// stable storage; see WithSyncPolicy and the wal package for the
// exact guarantees of each policy.
type SyncPolicy = wal.SyncPolicy

// The sync policies, from safest to fastest.
const (
	// SyncAlways fsyncs every append before acknowledging.
	SyncAlways = wal.SyncAlways
	// SyncInterval flushes in the background every WithSyncInterval.
	SyncInterval = wal.SyncInterval
	// SyncNone leaves flushing to the OS (rotation/close still sync).
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy resolves the flag spelling of a sync policy
// ("always", "interval", "none"; "" means always).
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WithDurability roots a store's write-ahead log at dir — the option
// that turns OpenStore's result into a crash-recoverable store. The
// directory is created on first use and recovered from on open.
func WithDurability(dir string) Option { return func(c *config) { c.durableDir = dir } }

// WithSyncPolicy selects the WAL append durability policy (default
// SyncAlways). See SyncAlways, SyncInterval, SyncNone for the
// crash-loss tradeoffs each makes.
func WithSyncPolicy(p SyncPolicy) Option { return func(c *config) { c.syncPolicy = p } }

// WithSyncInterval sets the background flush period used under
// SyncInterval (0, the default, means 50ms).
func WithSyncInterval(d time.Duration) Option { return func(c *config) { c.syncInterval = d } }

// WithCheckpointEvery makes the durable store checkpoint a shard
// (and truncate its log) in the background after n records (0 = the
// default 1024; negative disables automatic checkpoints — Close and
// Checkpoint still write them).
func WithCheckpointEvery(n int) Option { return func(c *config) { c.checkpointEvery = n } }

// GroupCommit tunes WAL group commit; see WithGroupCommit.
type GroupCommit = wal.GroupCommit

// WithGroupCommit batches concurrent SyncAlways appenders into shared
// fsyncs: waiters enqueue on a per-shard commit queue and a leader
// commits up to MaxBatch frames (default 128) under ONE fsync. A lone
// appender still commits at single-append latency; MaxDelay optionally
// lets a partially filled batch wait once for stragglers. Durability
// guarantees are unchanged frame-for-frame. Ignored under
// SyncInterval/SyncNone, which have no per-append fsync to amortize.
func WithGroupCommit(g GroupCommit) Option { return func(c *config) { c.groupCommit = g } }

// WithResolveWorkers bounds how many sessions a Pipeline resolves
// concurrently (0, the default, uses all cores); see NewPipeline.
func WithResolveWorkers(n int) Option { return func(c *config) { c.resolveWorkers = n } }

// WithResolveQueue bounds a Pipeline's total pending requests; past
// it submits fail fast with ErrPipelineSaturated (0 = 1024, negative
// = unbounded). See NewPipeline.
func WithResolveQueue(n int) Option { return func(c *config) { c.resolveQueue = n } }

// EngineFactory builds the choice engine a solver evaluates the
// paper's Eq. 1–4 with; pass one to WithEngine.
type EngineFactory = solver.EngineFactory

// Progress is one streaming notification emitted through WithProgress.
type Progress = solver.Progress

// SparseEngine is the default production engine factory: sorted
// scheduled-mass accumulators, allocation-free scoring hot paths.
var SparseEngine EngineFactory = solver.DefaultEngine

// DenseEngine is the paper-faithful O(|U|)-per-score engine factory,
// retained for ablations.
var DenseEngine EngineFactory = solver.DenseEngine

// PrunedEngine is the candidate-list pruned engine factory for
// million-user instances: per-event top-k interested-user lists with a
// cached frozen-tail term make empty-interval scores O(k), and GRD's
// argmax rescores loaded intervals with O(k) upper bounds, paying the
// exact full fold only for contenders that reach the top. Results are
// identical to SparseEngine; only the work changes. See
// ses/internal/choice.Pruned.
var PrunedEngine EngineFactory = solver.PrunedEngine

// PrunedEngineK returns a PrunedEngine factory with candidate lists of
// size k instead of the default (k <= 0 selects the default).
func PrunedEngineK(k int) EngineFactory { return solver.PrunedEngineK(k) }

// Objective defines what a schedule is worth: an interval-decomposable
// fold over per-user attendance terms. Select one with WithObjective;
// see Omega, AttendanceObjective and FairnessObjective.
type Objective = choice.Objective

// Omega is the default objective: the paper's expected total
// attendance Ω (Eq. 3).
var Omega = choice.Omega

// AttendanceObjective returns the thresholded success-probability
// objective (after the authors' SEP follow-up): a user's expected
// attendance counts only once their probability of going out to the
// interval's scheduled events reaches theta. theta must be in [0, 1].
func AttendanceObjective(theta float64) (Objective, error) { return choice.NewAttendance(theta) }

// FairnessObjective returns the egalitarian objective (after the
// authors' fair virtual-conference scheduling line): each interval's
// value blends total attendance with blend·n·min participant share.
// blend must be in [0, 1]; 0 degenerates to Omega.
func FairnessObjective(blend float64) (Objective, error) { return choice.NewFairness(blend) }

// ParseObjective resolves an objective spec ("omega", "attendance",
// "attendance:0.25", "fairness", "fairness:0.8"; "" means omega) —
// the form used by the sessolve/sesd surfaces and stored in
// snapshots.
func ParseObjective(spec string) (Objective, error) { return choice.ParseObjective(spec) }

// ObjectiveNames lists the registered objective families.
func ObjectiveNames() []string { return choice.ObjectiveNames() }
