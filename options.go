package ses

import "ses/internal/solver"

// Option configures solver construction (New) and Scheduler sessions
// (NewScheduler). The same options apply to both surfaces: a session
// is just a solver with retained state, so the knobs — engine choice,
// scoring parallelism, randomization seed, progress streaming — are
// shared.
type Option func(*config)

// config is the resolved option set.
type config struct {
	workers  int
	engine   EngineFactory
	seed     uint64
	progress func(Progress)
}

// solverConfig converts the resolved options to the internal solver
// configuration.
func (c config) solverConfig() SolverConfig {
	return SolverConfig{Engine: c.engine, Workers: c.workers, Progress: c.progress}
}

// resolve applies opts over the defaults.
func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWorkers sets the number of goroutines used for initial scoring
// (0, the default, uses all cores; 1 runs serially). Schedules,
// utilities and counters are byte-identical for any value.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithEngine injects a choice-engine factory — SparseEngine (the
// default) or DenseEngine for ablations.
func WithEngine(f EngineFactory) Option { return func(c *config) { c.engine = f } }

// WithSeed seeds the randomized algorithms (rand, anneal, online);
// deterministic algorithms ignore it. The default seed is 0.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithProgress streams one Progress notification per assignment
// applied to the solver's (or session's) main engine, synchronously
// from the goroutine running the solve. Use it to drive live UIs or
// logs while a long solve runs; read the final schedule from the
// Result, not from the stream. The callback must not call back into
// the solver or Scheduler it is observing (a Scheduler callback runs
// under the session lock).
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// EngineFactory builds the choice engine a solver evaluates the
// paper's Eq. 1–4 with; pass one to WithEngine.
type EngineFactory = solver.EngineFactory

// Progress is one streaming notification emitted through WithProgress.
type Progress = solver.Progress

// SparseEngine is the default production engine factory: sorted
// scheduled-mass accumulators, allocation-free scoring hot paths.
var SparseEngine EngineFactory = solver.DefaultEngine

// DenseEngine is the paper-faithful O(|U|)-per-score engine factory,
// retained for ablations.
var DenseEngine EngineFactory = solver.DenseEngine
