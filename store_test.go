package ses_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"ses"
)

// storeInstance builds a small instance through the public facade.
func storeInstance(t testing.TB) *ses.Instance {
	t.Helper()
	ds := smallDataset(t)
	inst, err := ses.BuildInstance(ds, ses.PaperParams{K: 5, Intervals: 6, CandidateEvents: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestStoreFacadeEndToEnd(t *testing.T) {
	inst := storeInstance(t)
	st := ses.NewStore(ses.WithWorkers(1))
	if err := st.Create("campus", inst, 5); err != nil {
		t.Fatal(err)
	}
	if err := st.Create("campus", inst, 5); !errors.Is(err, ses.ErrSessionExists) {
		t.Fatalf("duplicate create: got %v, want ErrSessionExists", err)
	}

	// A batch through every constructor kind commits with one resolve.
	res, err := st.ApplyBatch(context.Background(), "campus", []ses.Mutation{
		ses.AddEventOp(ses.Event{Location: 2, Required: 1, Name: "workshop"}, map[int]float64{0: 0.9, 2: 0.4}),
		ses.AddCompetingOp(ses.CompetingEvent{Interval: 1, Name: "derby"}, map[int]float64{1: 0.7}),
		ses.UpdateInterestOp(3, 0, 0.6),
		ses.ForbidOp(1, 0),
		ses.SetKOp(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventIDs) != 1 || len(res.CompetingIDs) != 1 {
		t.Fatalf("batch ids: %+v", res)
	}
	if res.Delta == nil || res.Delta.Utility <= 0 {
		t.Fatalf("batch delta: %+v", res.Delta)
	}
	meta, err := st.Meta("campus")
	if err != nil {
		t.Fatal(err)
	}
	if meta.K != 6 || meta.Batches != 1 || meta.Mutations != 5 {
		t.Fatalf("meta: %+v", meta)
	}

	// Snapshot → JSON wire → restore into a second store; both serve
	// identical state, and re-snapshotting is byte-identical.
	state, err := st.Snapshot("campus")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ses.NewSnapshot("campus", state)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != ses.SnapshotVersion {
		t.Fatalf("snapshot version %d, want %d", doc.Version, ses.SnapshotVersion)
	}
	var wire bytes.Buffer
	if err := ses.EncodeSnapshot(&wire, doc); err != nil {
		t.Fatal(err)
	}
	decoded, err := ses.DecodeSnapshot(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	state2, err := decoded.State()
	if err != nil {
		t.Fatal(err)
	}
	st2 := ses.NewStore(ses.WithWorkers(1))
	if err := st2.Restore("campus", state2, false); err != nil {
		t.Fatal(err)
	}
	a, _ := st.Get("campus")
	b, _ := st2.Get("campus")
	if !reflect.DeepEqual(a.Schedule(), b.Schedule()) || a.Utility() != b.Utility() {
		t.Fatal("restored store serves different state")
	}
	redoc, err := ses.NewSnapshot("campus", b.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var rewire bytes.Buffer
	if err := ses.EncodeSnapshot(&rewire, redoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.Bytes(), rewire.Bytes()) {
		t.Fatal("snapshot of restored session not byte-identical")
	}

	// Binary codec round-trips through the facade too.
	var disk bytes.Buffer
	if err := ses.EncodeSnapshotBinary(&disk, doc); err != nil {
		t.Fatal(err)
	}
	bdoc, err := ses.DecodeSnapshotBinary(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, bdoc) {
		t.Fatal("binary snapshot decode differs from original document")
	}

	// RestoreScheduler rebuilds a standalone session from the state.
	solo, err := ses.RestoreScheduler(state2, ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Schedule(), a.Schedule()) {
		t.Fatal("standalone restore differs")
	}

	if err := st.Delete("campus"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Meta("campus"); !errors.Is(err, ses.ErrSessionNotFound) {
		t.Fatalf("deleted session: got %v, want ErrSessionNotFound", err)
	}
}
