package ses

import (
	"ses/internal/colstore"
)

// ColumnarStore is an open columnar instance file: a memory-mapped
// (or, where mmap is unavailable, contiguously read) struct-of-arrays
// interest matrix plus the instance metadata around it. The instance's
// interest rows are zero-copy views into the backing bytes — valid
// until Close, read-only — so engines fold straight over the mapping
// and a million-user instance opens in milliseconds without
// materializing its matrices on the heap. See ses/internal/colstore
// for the format.
type ColumnarStore = colstore.Store

// WriteColumnarInstance writes inst to path in the columnar format.
// The activity model must be the seeded uniform hash or a constant
// (the O(1)-state models; a dense table has no columnar form).
func WriteColumnarInstance(path string, inst *Instance) error {
	return colstore.WriteInstance(path, inst)
}

// OpenColumnarInstance opens a columnar instance file written by
// WriteColumnarInstance or `sesgen -colstore`. Pair it with
// PrunedEngine via WithEngine for sublinear-in-users resolves:
//
//	st, err := ses.OpenColumnarInstance("meetup-1m.sescol")
//	defer st.Close()
//	s, err := ses.New("grd", ses.WithEngine(ses.PrunedEngine))
//	res, err := s.Solve(ctx, st.Instance(), 100)
func OpenColumnarInstance(path string) (*ColumnarStore, error) {
	return colstore.Open(path)
}
