module ses

go 1.24
