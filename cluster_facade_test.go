package ses_test

import (
	"context"
	"testing"
	"time"

	"ses"
	"ses/internal/sestest"
)

// TestFacadeClusterRing exercises the placement surface: placement is
// deterministic, every member computes it identically, and the
// successor list is the distinct replica order.
func TestFacadeClusterRing(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	a, err := ses.NewClusterRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ses.NewClusterRing([]string{"n3", "n1", "n2"}, ses.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 200; i++ {
		name := "sess-" + string(rune('a'+i%26)) + "-" + time.Time{}.Add(time.Duration(i)).String()
		p := a.Primary(name)
		if q := b.Primary(name); q != p {
			t.Fatalf("rings disagree on %q: %s vs %s", name, p, q)
		}
		hits[p]++
		succ := a.Successors(name, 2)
		if len(succ) != 2 || succ[0] == p || succ[1] == p || succ[0] == succ[1] {
			t.Fatalf("successors of %q not distinct replicas: primary %s, succ %v", name, p, succ)
		}
	}
	for _, n := range nodes {
		if hits[n] == 0 {
			t.Errorf("node %s received no sessions out of 200", n)
		}
	}
	if _, err := ses.NewClusterRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
}

// TestFacadeWALTailer follows a durable store's log through the
// facade surface: every committed record is surfaced in order and the
// cursor advances monotonically.
func TestFacadeWALTailer(t *testing.T) {
	dir := t.TempDir()
	d, err := ses.OpenStore(ses.WithDurability(dir), ses.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	inst := sestest.Random(sestest.Config{Users: 30, Events: 6, Intervals: 3, Competing: 1, Seed: 7})
	if err := d.Create("tail-me", inst, 2); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := d.ApplyBatch(ctx, "tail-me", []ses.Mutation{ses.UpdateInterestOp(i, i%6, 0.4)}); err != nil {
			t.Fatal(err)
		}
	}

	// The session's shard directory holds create + 3 batches.
	shard := ses.ShardDir(dir, ses.ShardOf("tail-me"))
	tl := ses.NewWALTailer(shard, ses.WALCursor{}, ses.WALTailerOptions{Poll: time.Millisecond})
	defer tl.Close()
	var cur ses.WALCursor
	for i := 0; i < 4; i++ {
		tctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		rec, err := tl.Next(tctx)
		cancel()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(rec.Payload) == 0 {
			t.Fatalf("record %d has empty payload", i)
		}
		next := tl.Cursor()
		if !cur.IsZero() && !cur.Before(next) {
			t.Fatalf("cursor did not advance: %+v then %+v", cur, next)
		}
		cur = next
	}
}
